//! Content-addressed on-disk result cache for per-point observables.
//!
//! The determinism contract (tests/sched_determinism.rs) makes a point's
//! pooled observables a pure function of its physics: the model, every
//! algorithmic knob, the per-chain seeds, and how many chains pool into
//! the point. [`point_key`] fingerprints exactly that closure — each
//! chain's [`dqmc::params_fingerprint`] (which covers the model, seed and
//! sweep counts) plus the chain count and crowd width — so two requests
//! collide only when the engine guarantees byte-identical results, and a
//! grid differing in any seed, sweep count or crowd width keys elsewhere.
//!
//! Entries are `DQRC` frames under the checkpoint discipline: magic,
//! version, key echo, payload, CRC-32 trailer. Writes go through the
//! workspace's single audited write path, [`util::vfs::write_atomic`]
//! (process-unique temp file, `fsync`, atomic rename, parent-directory
//! `fsync`) — concurrent writers race benignly (last rename wins, every
//! intermediate state is a complete entry) and readers never observe a
//! torn write. Any entry that fails validation is evicted on sight and
//! the caller recomputes.
//!
//! Opening a cache **scrubs** it first: temp debris stranded by a crashed
//! writer is deleted and corrupt or foreign `.dqrc` entries are moved to
//! a `quarantine/` subdirectory; both counts surface in `/stats`.

use sched::{GridPoint, GridSpec, PointSummary};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use util::codec::{crc32, ByteReader, ByteWriter, CodecError, Fnv1a};

/// Entry magic: "DQRC" (DQmc Result Cache).
const MAGIC: &[u8; 4] = b"DQRC";
/// Entry format version.
const ENTRY_VERSION: u32 = 1;

/// What a cache probe found.
#[derive(Clone, Debug)]
pub enum Lookup {
    /// A valid entry; schedule-layer fields of the summary are zeroed.
    Hit(Box<PointSummary>),
    /// No entry on disk.
    Miss,
    /// An entry existed but failed validation; it has been deleted and
    /// the caller must recompute.
    Evicted,
}

/// Content address of one grid point's pooled observables.
///
/// Folds the physics closure only: per-chain parameter fingerprints
/// (model + knobs + hash-split seed + warmup/measure sweeps), the chain
/// count, and the crowd width. Scheduling inputs — workers, devices,
/// quanta, fault plans — are deliberately excluded: the determinism tier
/// proves they cannot move observable bytes. Crowd width *is* included:
/// the engine proves it unobservable too, but the cache stays conservative
/// about the one knob that changes which backend executes the chains.
pub fn point_key(spec: &GridSpec, point: &GridPoint) -> u64 {
    let mut f = Fnv1a::new();
    f.update(b"dqmc-serve-point-v1");
    f.update_u64(spec.chains as u64);
    f.update_u64(spec.crowd.max(1) as u64);
    for chain in 0..spec.chains {
        f.update_u64(dqmc::params_fingerprint(&spec.chain_params(point, chain)));
    }
    f.finish()
}

/// Name of the subdirectory corrupt entries are moved into at open.
pub const QUARANTINE_DIR: &str = "quarantine";

/// A directory of `DQRC` entries, one per point key.
pub struct ResultCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    scrubbed_debris: u64,
    scrubbed_corrupt: u64,
}

impl ResultCache {
    /// Opens (creating if needed) a cache rooted at `dir`, scrubbing it
    /// first: stranded atomic-write temp files are removed, and `.dqrc`
    /// entries that fail validation are moved into [`QUARANTINE_DIR`]
    /// (preserved for post-mortems rather than deleted — corruption found
    /// at startup, unlike a racing eviction, may indicate a storage
    /// problem worth diagnosing).
    pub fn open(dir: &Path) -> std::io::Result<ResultCache> {
        std::fs::create_dir_all(dir)?;
        let scrubbed_debris = util::vfs::scrub_tmp(dir)?.count();
        let scrubbed_corrupt = quarantine_corrupt_entries(dir)?;
        Ok(ResultCache {
            dir: dir.to_path_buf(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            scrubbed_debris,
            scrubbed_corrupt,
        })
    }

    /// The entry path for a key.
    pub fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.dqrc"))
    }

    /// Probes the cache for `key`, evicting any invalid entry it finds.
    pub fn lookup(&self, key: u64) -> Lookup {
        let path = self.entry_path(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return Lookup::Miss;
            }
        };
        match decode_entry(key, &bytes) {
            Ok(summary) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Lookup::Hit(Box::new(summary))
            }
            Err(_) => {
                // A corrupt entry must not shadow the recompute path; the
                // remove may itself fail (already evicted by a racer) and
                // that is fine.
                let _ = std::fs::remove_file(&path);
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                Lookup::Evicted
            }
        }
    }

    /// Stores a point summary under `key` through the single audited
    /// write path (temp file, fsync, atomic rename, parent-dir fsync;
    /// the temp file is cleaned up on every error path). Concurrent
    /// writers of the same key race benignly — the entries they write
    /// are byte-identical by the determinism contract.
    pub fn store(&self, key: u64, summary: &PointSummary) -> std::io::Result<()> {
        util::vfs::write_atomic(&self.entry_path(key), &encode_entry(key, summary))
    }

    /// [`store`](ResultCache::store) with the workspace's deterministic
    /// bounded backoff on transient failures — the backfill path: losing
    /// a backfill silently would cost a recompute on every future probe.
    pub fn store_retry(&self, key: u64, summary: &PointSummary) -> std::io::Result<()> {
        util::vfs::write_atomic_retry(
            &self.entry_path(key),
            &encode_entry(key, summary),
            util::vfs::RETRY_ATTEMPTS,
            util::vfs::RETRY_BASE_DELAY,
        )
    }

    /// Valid entries served.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Probes that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted as corrupt.
    pub fn corrupt(&self) -> u64 {
        self.corrupt.load(Ordering::Relaxed)
    }

    /// Stranded temp files removed by the open-time scrub.
    pub fn scrubbed_debris(&self) -> u64 {
        self.scrubbed_debris
    }

    /// Corrupt entries quarantined by the open-time scrub.
    pub fn scrubbed_corrupt(&self) -> u64 {
        self.scrubbed_corrupt
    }
}

/// Moves every invalid `.dqrc` entry in `dir` into [`QUARANTINE_DIR`],
/// returning how many were moved. An entry is invalid when its name is
/// not a 16-digit hex key or its frame fails validation against that
/// key. Deterministic (sorted) scan order.
///
/// The rename here *moves* an existing file rather than publishing new
/// bytes, so the atomic-write discipline does not apply.
// dqmc-lint: allow(direct_fs)
fn quarantine_corrupt_entries(dir: &Path) -> std::io::Result<u64> {
    let mut names: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".dqrc") && entry.path().is_file() {
            names.push(name);
        }
    }
    names.sort_unstable();
    let mut moved = 0u64;
    for name in names {
        let path = dir.join(&name);
        let valid = name
            .strip_suffix(".dqrc")
            .filter(|stem| stem.len() == 16)
            .and_then(|stem| u64::from_str_radix(stem, 16).ok())
            .is_some_and(|key| {
                std::fs::read(&path)
                    .map(|bytes| decode_entry(key, &bytes).is_ok())
                    .unwrap_or(false)
            });
        if valid {
            continue;
        }
        let pen = dir.join(QUARANTINE_DIR);
        std::fs::create_dir_all(&pen)?;
        std::fs::rename(&path, pen.join(&name))?;
        moved += 1;
    }
    Ok(moved)
}

/// Serialises one entry: header, key echo, observables payload, CRC.
fn encode_entry(key: u64, summary: &PointSummary) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_bytes(MAGIC);
    w.put_u32(ENTRY_VERSION);
    w.put_u64(key);
    summary.encode_observables(&mut w);
    let body = w.into_bytes();
    let mut out = ByteWriter::new();
    out.put_bytes(&body);
    out.put_u32(crc32(&body));
    out.into_bytes()
}

/// Validates and decodes one entry; any failure means eviction.
fn decode_entry(key: u64, bytes: &[u8]) -> Result<PointSummary, CodecError> {
    if bytes.len() < 4 {
        return Err(CodecError::Truncated {
            needed: 4,
            remaining: bytes.len(),
        });
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
    let computed = crc32(body);
    if stored != computed {
        return Err(CodecError::BadChecksum { stored, computed });
    }
    let mut r = ByteReader::new(body);
    if r.get_bytes(4)? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.get_u32()?;
    if version != ENTRY_VERSION {
        return Err(CodecError::BadVersion {
            found: version,
            expected: ENTRY_VERSION,
        });
    }
    let echoed = r.get_u64()?;
    if echoed != key {
        return Err(CodecError::Invalid(format!(
            "entry keyed {echoed:#018x} found under {key:#018x}"
        )));
    }
    let summary = PointSummary::decode_observables(&mut r)?;
    if !r.is_exhausted() {
        return Err(CodecError::Invalid(format!(
            "{} trailing entry bytes",
            r.remaining()
        )));
    }
    Ok(summary)
}
