//! The `DQSF` wire protocol: length-prefixed, CRC-guarded frames.
//!
//! Every message between `dqmc-serve` and its clients is one frame:
//!
//! ```text
//! magic "DQSF" (4) | version u32 (4) | kind u8 (1) | payload len u64 (8)
//! | payload (len) | crc32(payload) u32 (4)
//! ```
//!
//! The discipline is the checkpoint codec's ([`util::codec`]): little-endian
//! fields, length prefixes validated against remaining bytes *before*
//! allocation, and a hard [`MAX_FRAME`] cap so a hostile or corrupt length
//! prefix can neither allocate unboundedly nor stall a reader. No decode
//! path may panic on arbitrary socket bytes — the property tests in
//! `tests/protocol.rs` fuzz exactly that.

use std::io::{Read, Write};
use util::codec::{crc32, ByteReader, ByteWriter, CodecError};

/// Frame magic: "DQSF" (DQmc Service Frame).
pub const MAGIC: &[u8; 4] = b"DQSF";
/// Protocol version this build speaks.
pub const VERSION: u32 = 1;
/// Hard cap on a frame payload. Grid specs and per-point observable JSON
/// are a few hundred bytes; 4 MiB leaves room for huge grids while bounding
/// what one frame can make a peer allocate.
pub const MAX_FRAME: usize = 1 << 22;
/// Fixed header size: magic + version + kind + payload length.
pub const HEADER_LEN: usize = 4 + 4 + 1 + 8;

/// Everything that can cross the wire, either direction.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Client → server: run this grid.
    Submit {
        /// Tenant identity (admission accounting; not authentication).
        tenant: String,
        /// Priority class for the campaign's jobs.
        priority: u8,
        /// The grid-spec text, exactly as a `.sweep` file.
        grid: String,
    },
    /// Server → client: the submission was admitted.
    Accepted {
        /// Server-side request id (diagnostics).
        request: u64,
        /// Points the grid resolves to.
        points: u64,
        /// Points that will be served from the result cache.
        cached: u64,
        /// Jobs enqueued for the remaining points (0 on a full warm hit).
        jobs: u64,
    },
    /// Server → client: the submission was refused; the connection stays
    /// usable.
    Rejected {
        /// Human-readable refusal reason.
        reason: String,
    },
    /// Server → client: one point's observables, streamed the moment the
    /// point completes (or immediately, for cache hits).
    Point {
        /// Canonical point index within the grid.
        index: u64,
        /// True when served from the result cache.
        cached: bool,
        /// The point's observables-JSON fragment.
        json: String,
    },
    /// Server → client: the campaign is complete.
    Done {
        /// The full observables document — byte-identical to what
        /// `dqmc-run` would have printed for the same grid.
        observables: String,
        /// Jobs actually enqueued (0 proves a warm hit ran nothing).
        jobs_run: u64,
        /// Points served from cache.
        cached_points: u64,
        /// Points computed this request.
        computed_points: u64,
        /// Chains that permanently failed.
        failed_chains: u64,
        /// Recovery-ladder actions over the computed points.
        recovery_events: u64,
    },
    /// Client → server: report service counters.
    StatsRequest,
    /// Server → client: service counters.
    StatsReply {
        /// Jobs enqueued since the service started.
        jobs_submitted: u64,
        /// Campaigns fully completed.
        campaigns_completed: u64,
        /// Campaigns currently in flight.
        active_campaigns: u64,
        /// Result-cache hits.
        cache_hits: u64,
        /// Result-cache misses.
        cache_misses: u64,
        /// Cache entries evicted as corrupt.
        cache_corrupt: u64,
    },
    /// Client → server: drain and exit.
    Shutdown,
    /// Server → client: shutdown acknowledged.
    ShutdownAck,
}

/// Why a wire operation failed.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// The frame bytes were malformed (bad magic/version/crc, truncated or
    /// invalid fields).
    Codec(CodecError),
    /// The payload length exceeds [`MAX_FRAME`].
    Oversized {
        /// Length the header claimed.
        len: usize,
        /// The cap.
        max: usize,
    },
    /// The frame kind byte names no known frame.
    UnknownKind(u8),
    /// The server refused the request (client-side convenience).
    Rejected(String),
    /// The peer sent a frame the protocol state does not allow.
    Protocol(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Codec(e) => write!(f, "frame decode error: {e}"),
            WireError::Oversized { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds cap {max}")
            }
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Rejected(reason) => write!(f, "rejected: {reason}"),
            WireError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Codec(e)
    }
}

fn put_str(w: &mut ByteWriter, s: &str) {
    w.put_u64(s.len() as u64);
    w.put_bytes(s.as_bytes());
}

fn get_str(r: &mut ByteReader<'_>) -> Result<String, CodecError> {
    let len = r.get_u64()? as usize;
    // Bounds-check before get_bytes so the error names the string field's
    // byte budget, and a corrupt prefix cannot drive a huge allocation.
    if len > r.remaining() {
        return Err(CodecError::Truncated {
            needed: len,
            remaining: r.remaining(),
        });
    }
    match std::str::from_utf8(r.get_bytes(len)?) {
        Ok(s) => Ok(s.to_string()),
        Err(_) => Err(CodecError::Invalid("string field is not UTF-8".into())),
    }
}

fn get_bool(r: &mut ByteReader<'_>) -> Result<bool, CodecError> {
    match r.get_u8()? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(CodecError::Invalid(format!(
            "bool field must be 0 or 1, found {other}"
        ))),
    }
}

impl Frame {
    /// The kind byte identifying this frame on the wire.
    pub fn kind(&self) -> u8 {
        match self {
            Frame::Submit { .. } => 1,
            Frame::Accepted { .. } => 2,
            Frame::Rejected { .. } => 3,
            Frame::Point { .. } => 4,
            Frame::Done { .. } => 5,
            Frame::StatsRequest => 6,
            Frame::StatsReply { .. } => 7,
            Frame::Shutdown => 8,
            Frame::ShutdownAck => 9,
        }
    }

    fn encode_payload(&self, w: &mut ByteWriter) {
        match self {
            Frame::Submit {
                tenant,
                priority,
                grid,
            } => {
                put_str(w, tenant);
                w.put_u8(*priority);
                put_str(w, grid);
            }
            Frame::Accepted {
                request,
                points,
                cached,
                jobs,
            } => {
                w.put_u64(*request);
                w.put_u64(*points);
                w.put_u64(*cached);
                w.put_u64(*jobs);
            }
            Frame::Rejected { reason } => put_str(w, reason),
            Frame::Point {
                index,
                cached,
                json,
            } => {
                w.put_u64(*index);
                w.put_u8(u8::from(*cached));
                put_str(w, json);
            }
            Frame::Done {
                observables,
                jobs_run,
                cached_points,
                computed_points,
                failed_chains,
                recovery_events,
            } => {
                put_str(w, observables);
                w.put_u64(*jobs_run);
                w.put_u64(*cached_points);
                w.put_u64(*computed_points);
                w.put_u64(*failed_chains);
                w.put_u64(*recovery_events);
            }
            Frame::StatsRequest | Frame::Shutdown | Frame::ShutdownAck => {}
            Frame::StatsReply {
                jobs_submitted,
                campaigns_completed,
                active_campaigns,
                cache_hits,
                cache_misses,
                cache_corrupt,
            } => {
                w.put_u64(*jobs_submitted);
                w.put_u64(*campaigns_completed);
                w.put_u64(*active_campaigns);
                w.put_u64(*cache_hits);
                w.put_u64(*cache_misses);
                w.put_u64(*cache_corrupt);
            }
        }
    }

    fn decode_payload(kind: u8, r: &mut ByteReader<'_>) -> Result<Frame, WireError> {
        let frame = match kind {
            1 => Frame::Submit {
                tenant: get_str(r)?,
                priority: r.get_u8()?,
                grid: get_str(r)?,
            },
            2 => Frame::Accepted {
                request: r.get_u64()?,
                points: r.get_u64()?,
                cached: r.get_u64()?,
                jobs: r.get_u64()?,
            },
            3 => Frame::Rejected {
                reason: get_str(r)?,
            },
            4 => Frame::Point {
                index: r.get_u64()?,
                cached: get_bool(r)?,
                json: get_str(r)?,
            },
            5 => Frame::Done {
                observables: get_str(r)?,
                jobs_run: r.get_u64()?,
                cached_points: r.get_u64()?,
                computed_points: r.get_u64()?,
                failed_chains: r.get_u64()?,
                recovery_events: r.get_u64()?,
            },
            6 => Frame::StatsRequest,
            7 => Frame::StatsReply {
                jobs_submitted: r.get_u64()?,
                campaigns_completed: r.get_u64()?,
                active_campaigns: r.get_u64()?,
                cache_hits: r.get_u64()?,
                cache_misses: r.get_u64()?,
                cache_corrupt: r.get_u64()?,
            },
            8 => Frame::Shutdown,
            9 => Frame::ShutdownAck,
            other => return Err(WireError::UnknownKind(other)),
        };
        Ok(frame)
    }
}

/// Encodes one frame to its wire bytes.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut pw = ByteWriter::new();
    frame.encode_payload(&mut pw);
    let payload = pw.into_bytes();
    let mut w = ByteWriter::new();
    w.put_bytes(MAGIC);
    w.put_u32(VERSION);
    w.put_u8(frame.kind());
    w.put_u64(payload.len() as u64);
    w.put_bytes(&payload);
    w.put_u32(crc32(&payload));
    w.into_bytes()
}

/// Validates a frame header, returning `(kind, payload_len)`.
fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(u8, usize), WireError> {
    let mut r = ByteReader::new(header);
    if r.get_bytes(4)? != MAGIC {
        return Err(CodecError::BadMagic.into());
    }
    let version = r.get_u32()?;
    if version != VERSION {
        return Err(CodecError::BadVersion {
            found: version,
            expected: VERSION,
        }
        .into());
    }
    let kind = r.get_u8()?;
    let len = r.get_u64()? as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversized {
            len,
            max: MAX_FRAME,
        });
    }
    Ok((kind, len))
}

/// Decodes the payload+crc section once the header is validated.
fn parse_body(kind: u8, payload: &[u8], stored_crc: u32) -> Result<Frame, WireError> {
    let computed = crc32(payload);
    if stored_crc != computed {
        return Err(CodecError::BadChecksum {
            stored: stored_crc,
            computed,
        }
        .into());
    }
    let mut pr = ByteReader::new(payload);
    let frame = Frame::decode_payload(kind, &mut pr)?;
    if !pr.is_exhausted() {
        return Err(
            CodecError::Invalid(format!("{} trailing payload bytes", pr.remaining())).into(),
        );
    }
    Ok(frame)
}

/// Decodes one frame from a byte slice, returning the frame and the bytes
/// consumed. Never panics on arbitrary input.
pub fn parse_frame(bytes: &[u8]) -> Result<(Frame, usize), WireError> {
    if bytes.len() < HEADER_LEN {
        return Err(CodecError::Truncated {
            needed: HEADER_LEN,
            remaining: bytes.len(),
        }
        .into());
    }
    let mut header = [0u8; HEADER_LEN];
    header.copy_from_slice(&bytes[..HEADER_LEN]);
    let (kind, len) = parse_header(&header)?;
    let total = HEADER_LEN + len + 4;
    if bytes.len() < total {
        return Err(CodecError::Truncated {
            needed: total,
            remaining: bytes.len(),
        }
        .into());
    }
    let payload = &bytes[HEADER_LEN..HEADER_LEN + len];
    let mut tail = ByteReader::new(&bytes[HEADER_LEN + len..total]);
    let stored = tail.get_u32()?;
    let frame = parse_body(kind, payload, stored)?;
    Ok((frame, total))
}

/// Reads exactly one frame from a stream.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let (kind, len) = parse_header(&header)?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let mut tail = [0u8; 4];
    r.read_exact(&mut tail)?;
    parse_body(kind, &payload, u32::from_le_bytes(tail))
}

/// Writes one frame to a stream and flushes it (streamed points must not
/// sit in a buffer while the next one computes).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&encode_frame(frame))?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_round_trips() {
        let frames = [
            Frame::Submit {
                tenant: "alice".into(),
                priority: 3,
                grid: "lx = 2\nseed = 7\n".into(),
            },
            Frame::Accepted {
                request: 9,
                points: 4,
                cached: 1,
                jobs: 6,
            },
            Frame::Rejected {
                reason: "tenant at campaign capacity".into(),
            },
            Frame::Point {
                index: 2,
                cached: true,
                json: "{\"point\":2}".into(),
            },
            Frame::Done {
                observables: "{}".into(),
                jobs_run: 4,
                cached_points: 1,
                computed_points: 3,
                failed_chains: 0,
                recovery_events: 2,
            },
            Frame::StatsRequest,
            Frame::StatsReply {
                jobs_submitted: 10,
                campaigns_completed: 2,
                active_campaigns: 1,
                cache_hits: 5,
                cache_misses: 3,
                cache_corrupt: 1,
            },
            Frame::Shutdown,
            Frame::ShutdownAck,
        ];
        for f in &frames {
            let bytes = encode_frame(f);
            let (got, used) = parse_frame(&bytes).expect("round trip");
            assert_eq!(&got, f);
            assert_eq!(used, bytes.len());
            // Stream reader agrees with the slice parser.
            let mut cursor = std::io::Cursor::new(&bytes);
            assert_eq!(&read_frame(&mut cursor).expect("stream read"), f);
        }
    }

    #[test]
    fn corrupt_frames_are_rejected_not_panicked() {
        let bytes = encode_frame(&Frame::Rejected { reason: "x".into() });
        // Flip every single byte; every mutation must decode to an error or
        // to an (unlikely) different valid frame, never panic.
        for i in 0..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0xFF;
            let _ = parse_frame(&b);
        }
        // Truncations at every length.
        for cut in 0..bytes.len() {
            assert!(parse_frame(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn oversized_length_prefix_is_capped() {
        let mut w = ByteWriter::new();
        w.put_bytes(MAGIC);
        w.put_u32(VERSION);
        w.put_u8(6);
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        assert!(matches!(
            parse_frame(&bytes),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn unknown_kind_is_a_clean_error() {
        let mut bytes = encode_frame(&Frame::Shutdown);
        bytes[8] = 200; // kind byte follows magic(4) + version(4)
        assert!(matches!(
            parse_frame(&bytes),
            Err(WireError::UnknownKind(200))
        ));
    }
}
