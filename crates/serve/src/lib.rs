//! Sweep-as-a-service on top of the [`sched`] scheduler.
//!
//! The scheduler's determinism contract — pooled observables are a pure
//! function of (grid, seeds) — is what makes a *service* out of a batch
//! runner: results can be streamed point by point, cached by content
//! address, and replayed byte-identically for any tenant that asks the
//! same question. This crate provides the three layers:
//!
//! 1. **Protocol** ([`protocol`]): `DQSF` frames — length-prefixed,
//!    CRC-guarded, capped — carrying submissions, streamed points, and
//!    final documents over TCP. No decode path panics on arbitrary bytes.
//! 2. **Cache** ([`cache`]): `DQRC` entries keyed by the physics closure
//!    (per-chain parameter fingerprints + chain count + crowd width),
//!    written atomically (tmp, fsync, rename) and self-evicting on any
//!    validation failure.
//! 3. **Server/client** ([`server`], [`client`]): a resident accept loop
//!    multiplexing tenants into one [`sched::SweepService`], streaming
//!    each point as it completes, short-circuiting warm hits without
//!    enqueueing a single job; and the matching blocking client.
//!
//! `tests/serve.rs` at the workspace root drives a real server on an
//! ephemeral port through cold/warm/concurrent/disconnect/corruption
//! scenarios.

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;

pub use cache::{point_key, Lookup, ResultCache};
pub use client::{Client, Stats, StreamedPoint, SubmitOutcome};
pub use protocol::{
    encode_frame, parse_frame, read_frame, write_frame, Frame, WireError, MAX_FRAME,
};
pub use server::{
    FleetPolicy, Server, ServerConfig, ServerHandle, REASON_QUEUE_CLOSED, REASON_QUEUE_FULL,
};
