//! Property tests of the DQSF wire codec: round-trip identity for every
//! frame shape, and the guarantee that arbitrary, truncated, corrupted, or
//! oversized bytes from a socket error cleanly — no decode path panics.

use proptest::prelude::*;
use serve::protocol::{encode_frame, parse_frame, read_frame, Frame, WireError, HEADER_LEN};

/// Maps arbitrary bytes onto a valid (possibly multi-byte UTF-8) string so
/// string fields get exercised with embedded NULs, quotes, and high code
/// points without violating the UTF-8 invariant the codec enforces.
fn stringify(bytes: Vec<u8>) -> String {
    bytes
        .into_iter()
        .map(|b| char::from_u32(b as u32).unwrap_or('\u{FFFD}'))
        .collect()
}

/// Strategy: one frame of every wire shape, fields drawn broadly.
fn arbitrary_frame() -> impl Strategy<Value = Frame> {
    (
        0u8..9,
        proptest::collection::vec(0u8..=255, 0..48),
        proptest::collection::vec(0u8..=255, 0..160),
        0u64..u64::MAX,
        0u64..u64::MAX,
        0u8..=255,
    )
        .prop_map(|(kind, a, b, x, y, p)| {
            let sa = stringify(a);
            let sb = stringify(b);
            match kind {
                0 => Frame::Submit {
                    tenant: sa,
                    priority: p,
                    grid: sb,
                },
                1 => Frame::Accepted {
                    request: x,
                    points: y,
                    cached: x.min(y),
                    jobs: y.wrapping_sub(x),
                },
                2 => Frame::Rejected { reason: sa },
                3 => Frame::Point {
                    index: x,
                    cached: p % 2 == 0,
                    json: sb,
                },
                4 => Frame::Done {
                    observables: sb,
                    jobs_run: x,
                    cached_points: y,
                    computed_points: x.wrapping_mul(3),
                    failed_chains: y % 7,
                    recovery_events: x % 11,
                },
                5 => Frame::StatsRequest,
                6 => Frame::StatsReply {
                    jobs_submitted: x,
                    campaigns_completed: y,
                    active_campaigns: x % 13,
                    cache_hits: y % 17,
                    cache_misses: x % 19,
                    cache_corrupt: y % 23,
                },
                7 => Frame::Shutdown,
                _ => Frame::ShutdownAck,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn frames_round_trip_exactly(frame in arbitrary_frame()) {
        let bytes = encode_frame(&frame);
        let (decoded, consumed) = parse_frame(&bytes).expect("round trip");
        prop_assert_eq!(&decoded, &frame);
        prop_assert_eq!(consumed, bytes.len());
        // The stream reader agrees with the slice parser.
        let mut cursor = std::io::Cursor::new(&bytes);
        prop_assert_eq!(&read_frame(&mut cursor).expect("stream read"), &frame);
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
        // Any outcome but a panic is acceptable; random bytes essentially
        // never spell a valid header, so also check short inputs error.
        let r = parse_frame(&bytes);
        if bytes.len() < HEADER_LEN {
            prop_assert!(r.is_err());
        }
    }

    #[test]
    fn every_truncation_errors(frame in arbitrary_frame()) {
        let bytes = encode_frame(&frame);
        for cut in 0..bytes.len() {
            prop_assert!(parse_frame(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn payload_corruption_is_always_detected(
        frame in arbitrary_frame(),
        flip in 0u8..8,
        pos in proptest::collection::vec(0usize..usize::MAX, 1..2),
    ) {
        let bytes = encode_frame(&frame);
        let payload_len = bytes.len() - HEADER_LEN - 4;
        if payload_len == 0 {
            return;
        }
        // Flip one bit of one payload byte: the CRC trailer must catch it.
        let at = HEADER_LEN + pos[0] % payload_len;
        let mut bad = bytes.clone();
        bad[at] ^= 1 << (flip % 8);
        prop_assert!(
            matches!(parse_frame(&bad), Err(WireError::Codec(_))),
            "payload corruption at byte {at} went undetected"
        );
    }

    #[test]
    fn oversized_length_prefixes_are_rejected(extra in 1u64..u64::MAX / 2) {
        // A header whose length field exceeds the cap must be refused
        // before any allocation happens.
        let mut bytes = encode_frame(&Frame::StatsRequest);
        let len = (serve::MAX_FRAME as u64).saturating_add(extra);
        bytes[9..17].copy_from_slice(&len.to_le_bytes());
        prop_assert!(matches!(
            parse_frame(&bytes),
            Err(WireError::Oversized { .. })
        ));
    }
}
