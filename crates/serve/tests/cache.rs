//! Unit tests of the content-addressed result cache: the fingerprint
//! distinguishes physics (seed, sweeps, crowd) and ignores scheduling
//! (workers, devices, quantum); single-byte corruption is detected and
//! evicted; and the atomic tmp+fsync+rename path survives concurrent
//! writers.

use dqmc::JackknifeScalars;
use sched::{GridSpec, PointSummary};
use serve::{point_key, Lookup, ResultCache};
use std::path::PathBuf;
use std::sync::Arc;

const GRID: &str = "
    lx = 2
    ly = 2
    u = 2.0, 4.0
    beta = 1.0
    chains = 2
    warmup = 2
    sweeps = 4
    bin_size = 2
    cluster_size = 4
    seed = 11
";

fn spec_with(extra: &str) -> GridSpec {
    GridSpec::parse(&format!("{GRID}\n{extra}")).expect("grid parses")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dqmc_serve_cache_{}_{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn summary(point: usize) -> PointSummary {
    PointSummary {
        point,
        u: 4.0,
        beta: 1.0,
        slices: 8,
        chains_ok: 2,
        chains_failed: 0,
        bin_count: 4,
        scalars: Some(JackknifeScalars {
            sign: (1.0, 0.0),
            density: (0.987_654_321, 0.001_5),
            double_occ: (0.123, 0.004),
            kinetic: (-1.234_567, 0.01),
            potential: (0.493_8, 0.002),
            saf: (0.333_333_333_333, 0.05),
        }),
        mean_acceptance: 0.42,
        max_wrap_error: 1e-9,
        recovery_events: 3,
        preemptions: 1,
        device_quanta: 5,
        host_quanta: 2,
        device_seconds: 0.75,
    }
}

#[test]
fn fingerprint_distinguishes_physics_and_ignores_scheduling() {
    let base = spec_with("");
    let p = base.points()[1];
    let key = point_key(&base, &p);

    // Physics knobs move the key — even when everything else is identical.
    for (name, changed) in [
        ("seed", spec_with("seed = 12")),
        ("sweeps", spec_with("sweeps = 8")),
        ("warmup", spec_with("warmup = 4")),
        ("chains", spec_with("chains = 3")),
        ("crowd", spec_with("crowd = 2")),
    ] {
        let q = changed.points()[1];
        assert_ne!(
            key,
            point_key(&changed, &q),
            "changing {name} must change the content address"
        );
    }

    // Scheduling knobs must NOT move the key: the determinism tier proves
    // they cannot move observable bytes, so caching across them is sound.
    for (name, changed) in [
        ("workers", spec_with("workers = 8")),
        ("devices", spec_with("devices = 4")),
        ("quantum", spec_with("quantum = 2")),
        ("job_retries", spec_with("job_retries = 3")),
    ] {
        let q = changed.points()[1];
        assert_eq!(
            key,
            point_key(&changed, &q),
            "changing {name} must not change the content address"
        );
    }

    // Different points of the same grid key apart (seed stream ids differ).
    assert_ne!(key, point_key(&base, &base.points()[0]));
}

#[test]
fn entries_round_trip_and_misses_are_clean() {
    let dir = scratch("roundtrip");
    let cache = ResultCache::open(&dir).expect("open");
    let spec = spec_with("");
    let p = spec.points()[0];
    let key = point_key(&spec, &p);

    assert!(matches!(cache.lookup(key), Lookup::Miss));
    let s = summary(p.index);
    cache.store(key, &s).expect("store");
    match cache.lookup(key) {
        Lookup::Hit(got) => {
            // Observable bytes survive the disk round trip exactly...
            assert_eq!(got.observables_json(), s.observables_json());
            // ...while schedule-layer fields are zeroed: a cache replay has
            // no schedule.
            assert_eq!(got.recovery_events, 0);
            assert_eq!(got.device_quanta, 0);
            assert_eq!(got.device_seconds, 0.0);
        }
        other => panic!("expected hit, got {other:?}"),
    }
    assert_eq!(cache.hits(), 1);
    assert_eq!(cache.misses(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_single_byte_corruption_is_detected_and_evicted() {
    let dir = scratch("corrupt");
    let cache = ResultCache::open(&dir).expect("open");
    let spec = spec_with("");
    let p = spec.points()[0];
    let key = point_key(&spec, &p);
    cache.store(key, &summary(p.index)).expect("store");
    let path = cache.entry_path(key);
    let good = std::fs::read(&path).expect("read entry");

    for pos in 0..good.len() {
        let mut bad = good.clone();
        bad[pos] ^= 0x20;
        std::fs::write(&path, &bad).expect("write corrupt");
        assert!(
            matches!(cache.lookup(key), Lookup::Evicted),
            "corruption at byte {pos} of {} went undetected",
            good.len()
        );
        // Eviction removed the entry: the next probe is a miss, i.e. the
        // caller recomputes instead of re-reading poison.
        assert!(!path.exists(), "corrupt entry at byte {pos} not evicted");
        assert!(matches!(cache.lookup(key), Lookup::Miss));
    }
    assert_eq!(cache.corrupt(), good.len() as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn an_entry_under_the_wrong_key_is_evicted() {
    let dir = scratch("wrongkey");
    let cache = ResultCache::open(&dir).expect("open");
    let spec = spec_with("");
    let points = spec.points();
    let key_a = point_key(&spec, &points[0]);
    let key_b = point_key(&spec, &points[1]);
    cache.store(key_a, &summary(0)).expect("store");
    // A valid entry copied under another key must not answer for it: the
    // key echo inside the checksummed payload catches the rename.
    std::fs::copy(cache.entry_path(key_a), cache.entry_path(key_b)).expect("copy");
    assert!(matches!(cache.lookup(key_b), Lookup::Evicted));
    assert!(matches!(cache.lookup(key_a), Lookup::Hit(_)));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_writers_of_one_key_leave_a_valid_entry() {
    let dir = scratch("racers");
    let cache = Arc::new(ResultCache::open(&dir).expect("open"));
    let spec = spec_with("");
    let p = spec.points()[0];
    let key = point_key(&spec, &p);
    let s = summary(p.index);

    // Every writer stores the same bytes — exactly the service's situation
    // when two tenants compute the same point simultaneously. The atomic
    // rename means any interleaving leaves one complete, valid entry.
    let mut threads = Vec::new();
    for _ in 0..8 {
        let cache = Arc::clone(&cache);
        let s = s.clone();
        threads.push(std::thread::spawn(move || {
            for _ in 0..16 {
                cache.store(key, &s).expect("store");
            }
        }));
    }
    for t in threads {
        t.join().expect("writer thread");
    }
    match cache.lookup(key) {
        Lookup::Hit(got) => assert_eq!(got.observables_json(), s.observables_json()),
        other => panic!("expected hit after racing writers, got {other:?}"),
    }
    // No temp droppings left behind.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "temp files left behind: {leftovers:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
