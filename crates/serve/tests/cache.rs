//! Unit tests of the content-addressed result cache: the fingerprint
//! distinguishes physics (seed, sweeps, crowd) and ignores scheduling
//! (workers, devices, quantum); single-byte corruption is detected and
//! evicted; and the atomic tmp+fsync+rename path survives concurrent
//! writers.

use dqmc::JackknifeScalars;
use sched::{GridSpec, PointSummary};
use serve::{point_key, Lookup, ResultCache};
use std::path::PathBuf;
use std::sync::Arc;

const GRID: &str = "
    lx = 2
    ly = 2
    u = 2.0, 4.0
    beta = 1.0
    chains = 2
    warmup = 2
    sweeps = 4
    bin_size = 2
    cluster_size = 4
    seed = 11
";

fn spec_with(extra: &str) -> GridSpec {
    GridSpec::parse(&format!("{GRID}\n{extra}")).expect("grid parses")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dqmc_serve_cache_{}_{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn summary(point: usize) -> PointSummary {
    PointSummary {
        point,
        u: 4.0,
        beta: 1.0,
        slices: 8,
        chains_ok: 2,
        chains_failed: 0,
        bin_count: 4,
        scalars: Some(JackknifeScalars {
            sign: (1.0, 0.0),
            density: (0.987_654_321, 0.001_5),
            double_occ: (0.123, 0.004),
            kinetic: (-1.234_567, 0.01),
            potential: (0.493_8, 0.002),
            saf: (0.333_333_333_333, 0.05),
        }),
        mean_acceptance: 0.42,
        max_wrap_error: 1e-9,
        recovery_events: 3,
        preemptions: 1,
        device_quanta: 5,
        host_quanta: 2,
        device_seconds: 0.75,
    }
}

#[test]
fn fingerprint_distinguishes_physics_and_ignores_scheduling() {
    let base = spec_with("");
    let p = base.points()[1];
    let key = point_key(&base, &p);

    // Physics knobs move the key — even when everything else is identical.
    for (name, changed) in [
        ("seed", spec_with("seed = 12")),
        ("sweeps", spec_with("sweeps = 8")),
        ("warmup", spec_with("warmup = 4")),
        ("chains", spec_with("chains = 3")),
        ("crowd", spec_with("crowd = 2")),
    ] {
        let q = changed.points()[1];
        assert_ne!(
            key,
            point_key(&changed, &q),
            "changing {name} must change the content address"
        );
    }

    // Scheduling knobs must NOT move the key: the determinism tier proves
    // they cannot move observable bytes, so caching across them is sound.
    for (name, changed) in [
        ("workers", spec_with("workers = 8")),
        ("devices", spec_with("devices = 4")),
        ("quantum", spec_with("quantum = 2")),
        ("job_retries", spec_with("job_retries = 3")),
    ] {
        let q = changed.points()[1];
        assert_eq!(
            key,
            point_key(&changed, &q),
            "changing {name} must not change the content address"
        );
    }

    // Different points of the same grid key apart (seed stream ids differ).
    assert_ne!(key, point_key(&base, &base.points()[0]));
}

#[test]
fn entries_round_trip_and_misses_are_clean() {
    let dir = scratch("roundtrip");
    let cache = ResultCache::open(&dir).expect("open");
    let spec = spec_with("");
    let p = spec.points()[0];
    let key = point_key(&spec, &p);

    assert!(matches!(cache.lookup(key), Lookup::Miss));
    let s = summary(p.index);
    cache.store(key, &s).expect("store");
    match cache.lookup(key) {
        Lookup::Hit(got) => {
            // Observable bytes survive the disk round trip exactly...
            assert_eq!(got.observables_json(), s.observables_json());
            // ...while schedule-layer fields are zeroed: a cache replay has
            // no schedule.
            assert_eq!(got.recovery_events, 0);
            assert_eq!(got.device_quanta, 0);
            assert_eq!(got.device_seconds, 0.0);
        }
        other => panic!("expected hit, got {other:?}"),
    }
    assert_eq!(cache.hits(), 1);
    assert_eq!(cache.misses(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_single_byte_corruption_is_detected_and_evicted() {
    let dir = scratch("corrupt");
    let cache = ResultCache::open(&dir).expect("open");
    let spec = spec_with("");
    let p = spec.points()[0];
    let key = point_key(&spec, &p);
    cache.store(key, &summary(p.index)).expect("store");
    let path = cache.entry_path(key);
    let good = std::fs::read(&path).expect("read entry");

    for pos in 0..good.len() {
        let mut bad = good.clone();
        bad[pos] ^= 0x20;
        std::fs::write(&path, &bad).expect("write corrupt");
        assert!(
            matches!(cache.lookup(key), Lookup::Evicted),
            "corruption at byte {pos} of {} went undetected",
            good.len()
        );
        // Eviction removed the entry: the next probe is a miss, i.e. the
        // caller recomputes instead of re-reading poison.
        assert!(!path.exists(), "corrupt entry at byte {pos} not evicted");
        assert!(matches!(cache.lookup(key), Lookup::Miss));
    }
    assert_eq!(cache.corrupt(), good.len() as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn an_entry_under_the_wrong_key_is_evicted() {
    let dir = scratch("wrongkey");
    let cache = ResultCache::open(&dir).expect("open");
    let spec = spec_with("");
    let points = spec.points();
    let key_a = point_key(&spec, &points[0]);
    let key_b = point_key(&spec, &points[1]);
    cache.store(key_a, &summary(0)).expect("store");
    // A valid entry copied under another key must not answer for it: the
    // key echo inside the checksummed payload catches the rename.
    std::fs::copy(cache.entry_path(key_a), cache.entry_path(key_b)).expect("copy");
    assert!(matches!(cache.lookup(key_b), Lookup::Evicted));
    assert!(matches!(cache.lookup(key_a), Lookup::Hit(_)));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_writers_of_one_key_leave_a_valid_entry() {
    let dir = scratch("racers");
    let cache = Arc::new(ResultCache::open(&dir).expect("open"));
    let spec = spec_with("");
    let p = spec.points()[0];
    let key = point_key(&spec, &p);
    let s = summary(p.index);

    // Every writer stores the same bytes — exactly the service's situation
    // when two tenants compute the same point simultaneously. The atomic
    // rename means any interleaving leaves one complete, valid entry.
    let mut threads = Vec::new();
    for _ in 0..8 {
        let cache = Arc::clone(&cache);
        let s = s.clone();
        threads.push(std::thread::spawn(move || {
            for _ in 0..16 {
                cache.store(key, &s).expect("store");
            }
        }));
    }
    for t in threads {
        t.join().expect("writer thread");
    }
    match cache.lookup(key) {
        Lookup::Hit(got) => assert_eq!(got.observables_json(), s.observables_json()),
        other => panic!("expected hit after racing writers, got {other:?}"),
    }
    // No temp droppings left behind.
    assert!(
        tmp_debris(&dir).is_empty(),
        "temp files left behind: {:?}",
        tmp_debris(&dir)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Names of atomic-write temp files (`.{name}.{pid}.{seq}.tmp`) in `dir`.
fn tmp_debris(dir: &std::path::Path) -> Vec<String> {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .filter(|n| n.starts_with('.') && n.ends_with(".tmp"))
                .collect()
        })
        .unwrap_or_default()
}

#[test]
fn failed_stores_leak_no_tmp_files_and_keep_the_old_entry() {
    let dir = scratch("faulted_store");
    let cache = ResultCache::open(&dir).expect("open");
    let spec = spec_with("");
    let p = spec.points()[0];
    let key = point_key(&spec, &p);
    cache.store(key, &summary(p.index)).expect("seed store");
    let old = std::fs::read(cache.entry_path(key)).expect("seed bytes");

    let scope = dir.file_name().unwrap().to_string_lossy().into_owned();
    // Every injectable failure mode of the write sequence, one store each:
    // the temp file must be gone and the published entry untouched.
    for (what, plan) in [
        ("create", util::vfs::FaultPlan::new().fail_create(1)),
        ("enospc", util::vfs::FaultPlan::new().enospc(1)),
        ("short write", util::vfs::FaultPlan::new().short_write(1)),
        ("fsync", util::vfs::FaultPlan::new().fail_fsync(1)),
        ("rename", util::vfs::FaultPlan::new().fail_rename(1)),
    ] {
        let _g = util::vfs::arm(plan.with_scope(&scope).with_seed(9));
        let err = cache.store(key, &summary(p.index + 1));
        assert!(err.is_err(), "injected {what} failure must surface");
        drop(_g);
        assert!(
            tmp_debris(&dir).is_empty(),
            "{what} failure leaked tmp files: {:?}",
            tmp_debris(&dir)
        );
        let now = std::fs::read(cache.entry_path(key)).expect("entry readable");
        assert_eq!(now, old, "{what} failure disturbed the published entry");
    }
    // And the entry still decodes through the front door.
    assert!(matches!(cache.lookup(key), Lookup::Hit(_)));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn open_scrubs_debris_and_quarantines_corrupt_entries() {
    let dir = scratch("scrub_open");
    {
        let cache = ResultCache::open(&dir).expect("open");
        cache.store(0x1111, &summary(0)).expect("valid entry");
        assert_eq!(cache.scrubbed_debris(), 0);
        assert_eq!(cache.scrubbed_corrupt(), 0);
    }
    // Plant the three kinds of damage a crashed or sick writer leaves:
    // stranded atomic-write temp files, a torn entry, and an entry whose
    // name is not a cache key at all.
    std::fs::write(dir.join(".deadbeef.dqrc.123.0.tmp"), b"torn").unwrap();
    std::fs::write(dir.join(".other.999.1.tmp"), b"").unwrap();
    let torn = std::fs::read(dir.join(format!("{:016x}.dqrc", 0x1111u64))).unwrap();
    std::fs::write(
        dir.join(format!("{:016x}.dqrc", 0x2222u64)),
        &torn[..torn.len() / 2],
    )
    .unwrap();
    std::fs::write(dir.join("not-a-key.dqrc"), b"foreign").unwrap();

    let cache = ResultCache::open(&dir).expect("reopen scrubs");
    assert_eq!(cache.scrubbed_debris(), 2, "both tmp files removed");
    assert_eq!(cache.scrubbed_corrupt(), 2, "torn + foreign quarantined");
    assert!(tmp_debris(&dir).is_empty());
    // The survivors: the valid entry (still a hit) and the quarantine pen.
    assert!(matches!(cache.lookup(0x1111), Lookup::Hit(_)));
    let pen = dir.join(serve::cache::QUARANTINE_DIR);
    assert!(pen.join(format!("{:016x}.dqrc", 0x2222u64)).exists());
    assert!(pen.join("not-a-key.dqrc").exists());
    // Scrubbing is not eviction: a probe for the quarantined key is a
    // plain miss, so the caller recomputes.
    assert!(matches!(cache.lookup(0x2222), Lookup::Miss));
    let _ = std::fs::remove_dir_all(&dir);
}
