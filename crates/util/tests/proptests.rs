//! Property-based tests for the utility crate.

use proptest::prelude::*;
use util::stats::{quantile_sorted, FiveNumber};
use util::{BinnedAccumulator, Rng, RunningStats};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    #[test]
    fn running_stats_match_direct_formulas(xs in proptest::collection::vec(-1e3f64..1e3, 2..200)) {
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() < 1e-8 * mean.abs().max(1.0));
        prop_assert!((s.variance() - var).abs() < 1e-6 * var.max(1.0));
        prop_assert_eq!(s.count(), xs.len() as u64);
    }

    #[test]
    fn merge_equals_sequential(
        xs in proptest::collection::vec(-1e2f64..1e2, 1..100),
        split in 0usize..100,
    ) {
        let cut = split % xs.len();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..cut] {
            a.push(x);
        }
        for &x in &xs[cut..] {
            b.push(x);
        }
        a.merge(&b);
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-7);
    }

    #[test]
    fn binned_mean_equals_plain_mean_on_complete_bins(
        xs in proptest::collection::vec(-1e2f64..1e2, 1..50),
        bin in 1usize..8,
    ) {
        let mut acc = BinnedAccumulator::new(bin);
        // Truncate to a whole number of bins so means agree exactly.
        let keep = (xs.len() / bin) * bin;
        prop_assume!(keep > 0);
        for &x in &xs[..keep] {
            acc.push(x);
        }
        let (mean, err) = acc.mean_and_err();
        let direct = xs[..keep].iter().sum::<f64>() / keep as f64;
        prop_assert!((mean - direct).abs() < 1e-9);
        prop_assert!(err >= 0.0);
    }

    #[test]
    fn five_number_is_ordered_and_bounded(xs in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
        let f = FiveNumber::from_samples(&xs);
        prop_assert!(f.min <= f.q1 + 1e-12);
        prop_assert!(f.q1 <= f.median + 1e-12);
        prop_assert!(f.median <= f.q3 + 1e-12);
        prop_assert!(f.q3 <= f.max + 1e-12);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(f.min, lo);
        prop_assert_eq!(f.max, hi);
    }

    #[test]
    fn quantiles_interpolate_monotonically(
        xs in proptest::collection::vec(-1e3f64..1e3, 2..50),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let mut v = xs;
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile_sorted(&v, lo) <= quantile_sorted(&v, hi) + 1e-12);
    }

    #[test]
    fn rng_range_always_in_bounds(seed in 0u64..10_000, n in 1u64..1000) {
        let mut rng = Rng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.next_range(n) < n);
        }
    }

    #[test]
    fn rng_split_streams_decorrelated(seed in 0u64..10_000) {
        let mut parent = Rng::new(seed);
        let mut a = parent.split();
        let mut b = parent.split();
        let matches = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        prop_assert!(matches < 2);
    }

    #[test]
    fn pooled_bins_are_order_independent(
        seed in 0u64..10_000,
        nchains in 2usize..6,
        rot in 0usize..6,
    ) {
        // Chain pooling in the sweep harness: merging per-chain accumulators
        // must give statistics independent of completion order. Bin means
        // themselves are permuted (merge concatenates), so the pooled
        // mean/error — symmetric functions of the bins — are what must
        // agree, and the bin multisets must be exact permutations.
        let mut chains: Vec<BinnedAccumulator> = Vec::new();
        let mut rng = Rng::new(seed);
        for _ in 0..nchains {
            let mut acc = BinnedAccumulator::new(3);
            for _ in 0..30 {
                acc.push(rng.next_f64() - 0.5);
            }
            chains.push(acc);
        }
        let pool = |order: &[usize]| {
            let mut merged = BinnedAccumulator::new(3);
            for &i in order {
                merged.merge(&chains[i]);
            }
            merged
        };
        let fwd: Vec<usize> = (0..nchains).collect();
        let rotated: Vec<usize> = (0..nchains).map(|i| (i + rot) % nchains).collect();
        let mut reversed = fwd.clone();
        reversed.reverse();
        let base = pool(&fwd);
        let (m0, e0) = base.mean_and_err();
        for order in [&rotated, &reversed] {
            let alt = pool(order);
            let (m, e) = alt.mean_and_err();
            prop_assert!((m - m0).abs() <= 1e-12 * m0.abs().max(1.0), "{} vs {}", m, m0);
            prop_assert!((e - e0).abs() <= 1e-12 * e0.abs().max(1.0), "{} vs {}", e, e0);
            let mut a: Vec<f64> = base.bins().to_vec();
            let mut b: Vec<f64> = alt.bins().to_vec();
            a.sort_by(|x, y| x.partial_cmp(y).unwrap());
            b.sort_by(|x, y| x.partial_cmp(y).unwrap());
            prop_assert_eq!(a, b);
        }
    }
}
