//! Shared utilities for the DQMC workspace.
//!
//! This crate provides the non-numerical plumbing used by every other crate:
//!
//! - [`rng`]: a self-contained, bit-reproducible Xoshiro256++ pseudo-random
//!   number generator (the Metropolis stream of a DQMC run must be exactly
//!   reproducible from a seed, so we do not depend on external RNG crates
//!   whose output may change between versions),
//! - [`stats`]: running means, standard errors, binned Monte Carlo error
//!   analysis, and five-number (box-and-whisker) summaries as used by the
//!   paper's Figure 2,
//! - [`timer`]: wall-clock phase profiling (Table I of the paper) and a
//!   simulated clock used by the GPU device model,
//! - [`table`]: minimal fixed-width table rendering for the figure/table
//!   harness binaries,
//! - [`codec`]: the little-endian byte codec, CRC-32 and FNV-1a hashes
//!   backing the versioned checkpoint format in `core::checkpoint`,
//! - [`error`]: the structured failure taxonomy ([`DqmcError`] with
//!   [`Severity`] classes) that keys retry/quarantine policy across the
//!   recovery ladder and the sweep scheduler,
//! - [`liveness`]: the heartbeat/cancellation [`RunToken`] shared between
//!   workers and the scheduler watchdog,
//! - [`vfs`]: the workspace's single audited atomic-write path
//!   (temp + fsync + rename + parent-directory fsync) with a
//!   deterministic, scriptable I/O fault-injection plan mirroring
//!   `gpusim::faults` — every on-disk format publishes through
//!   [`vfs::write_atomic`],
//! - [`sync`]: the workspace's lock primitives — the single audited
//!   poison-recovery helper ([`relock`]) and `Mutex`/`Condvar` types that
//!   switch onto the loom model-checking shim under `--cfg loom`.

pub mod codec;
pub mod error;
pub mod liveness;
pub mod rng;
pub mod stats;
pub mod sync;
pub mod table;
pub mod timer;
pub mod vfs;

pub use codec::{crc32, ByteReader, ByteWriter, CodecError, Fnv1a};
pub use error::{DqmcError, Severity};
pub use liveness::RunToken;
pub use rng::{derive_seed, Rng};
pub use stats::{
    autocorrelation_time, jackknife_mean, jackknife_ratio, BinnedAccumulator, FiveNumber,
    RunningStats,
};
pub use sync::relock;
pub use timer::{PhaseTimer, SimClock};
