//! Structured error taxonomy for the DQMC stack.
//!
//! Every failure that crosses a crate boundary — a device fault escaping
//! the recovery ladder, a tainted Green's function with recovery disabled,
//! a sick device declared by the watchdog — is classified into one
//! [`Severity`] class. The class, not a string match, keys every policy
//! decision downstream: whether the scheduler retries the job, whether the
//! retry consumes an attempt, whether the suspect device slot is excluded
//! from replacement, and whether the pool's circuit breaker records a
//! strike against the slot.
//!
//! | severity     | meaning                                | scheduler policy              |
//! |--------------|----------------------------------------|-------------------------------|
//! | `Transient`  | retry may succeed as-is                | retry, consumes an attempt    |
//! | `DeviceSick` | the *device* is suspect, not the job   | requeue free, exclude slot    |
//! | `Corrupt`    | data damaged but reconstructible       | retry, consumes an attempt    |
//! | `Fatal`      | no automatic recovery can help         | fail the job immediately      |
//!
//! The `Display` of a [`DqmcError`] embeds the original low-level detail
//! verbatim, so legacy `#[should_panic(expected = "...")]` tests keep
//! matching when an error is converted back into a panic by an infallible
//! wrapper.

use std::fmt;

/// Failure classification: what a supervisor should *do* about the error.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Severity {
    /// Retrying the same work, possibly on the same device, may succeed.
    Transient,
    /// The device (not the job) is suspect: requeue elsewhere, quarantine.
    DeviceSick,
    /// Data was damaged but can be rebuilt; retry consumes an attempt.
    Corrupt,
    /// No automatic recovery applies; fail fast and report.
    Fatal,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Transient => "transient",
            Severity::DeviceSick => "device-sick",
            Severity::Corrupt => "corrupt",
            Severity::Fatal => "fatal",
        };
        f.write_str(s)
    }
}

/// A classified failure crossing a crate boundary.
///
/// `hard` distinguishes the two watchdog verdicts inside the `DeviceSick`
/// class: a *soft* deadline miss (the op was killed after its logical
/// deadline; the worker parks the job cooperatively) versus a *hard* one
/// (the device wedged mid-op; the worker is declared lost and the job is
/// resurrected from its parked image). It is meaningless — and `false` —
/// for every other severity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DqmcError {
    /// What a supervisor should do about it.
    pub severity: Severity,
    /// The subsystem that raised it (e.g. `"sweep"`, `"wrap"`, `"device"`).
    pub origin: &'static str,
    /// The low-level detail, preserved verbatim from the original fault.
    pub detail: String,
    /// Hard failure flavor (worker lost) within `DeviceSick`.
    pub hard: bool,
}

impl DqmcError {
    /// A transient failure: retry may succeed.
    pub fn transient(origin: &'static str, detail: impl Into<String>) -> Self {
        DqmcError {
            severity: Severity::Transient,
            origin,
            detail: detail.into(),
            hard: false,
        }
    }

    /// A sick-device failure. `hard` marks the wedged (worker-lost) flavor.
    pub fn device_sick(origin: &'static str, detail: impl Into<String>, hard: bool) -> Self {
        DqmcError {
            severity: Severity::DeviceSick,
            origin,
            detail: detail.into(),
            hard,
        }
    }

    /// A data-corruption failure: rebuildable, retry consumes an attempt.
    pub fn corrupt(origin: &'static str, detail: impl Into<String>) -> Self {
        DqmcError {
            severity: Severity::Corrupt,
            origin,
            detail: detail.into(),
            hard: false,
        }
    }

    /// A fatal failure: no automatic recovery applies.
    pub fn fatal(origin: &'static str, detail: impl Into<String>) -> Self {
        DqmcError {
            severity: Severity::Fatal,
            origin,
            detail: detail.into(),
            hard: false,
        }
    }

    /// Whether a supervisor should retry the same work (attempt-counted).
    pub fn retryable(&self) -> bool {
        matches!(self.severity, Severity::Transient | Severity::Corrupt)
    }

    /// Whether the failure indicts the device rather than the job.
    pub fn quarantines_device(&self) -> bool {
        self.severity == Severity::DeviceSick
    }

    /// Classifies a panic payload caught by a `catch_unwind` backstop.
    ///
    /// Panics are the legacy, last-resort failure channel; anything still
    /// arriving this way is either one of the known terminal messages from
    /// the recovery ladder (classified `Fatal` — the ladder already tried
    /// everything) or an unknown bug (classified `Transient` so the legacy
    /// attempt-counted retry path still applies as a backstop).
    pub fn from_panic(payload: &(dyn std::any::Any + Send)) -> Self {
        let msg = payload
            .downcast_ref::<&'static str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        let fatal = msg.contains("recovery disabled")
            || msg.contains("all recovery rungs exhausted")
            || msg.contains("unrecoverable");
        if fatal {
            DqmcError::fatal("panic", msg)
        } else {
            DqmcError::transient("panic", msg)
        }
    }
}

impl fmt::Display for DqmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.severity, self.origin, self.detail)
    }
}

impl std::error::Error for DqmcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_keys_policy_predicates() {
        assert!(DqmcError::transient("t", "x").retryable());
        assert!(DqmcError::corrupt("t", "x").retryable());
        assert!(!DqmcError::device_sick("t", "x", false).retryable());
        assert!(!DqmcError::fatal("t", "x").retryable());
        assert!(DqmcError::device_sick("t", "x", true).quarantines_device());
        assert!(!DqmcError::fatal("t", "x").quarantines_device());
    }

    #[test]
    fn display_preserves_detail_verbatim() {
        let e = DqmcError::fatal("sweep", "backend fault with recovery disabled: boom");
        let s = e.to_string();
        assert!(s.contains("recovery disabled"), "{s}");
        assert!(s.contains("[fatal]"), "{s}");
    }

    #[test]
    fn panic_payload_classification() {
        let p: Box<dyn std::any::Any + Send> =
            Box::new("unrecoverable fault (all recovery rungs exhausted): x".to_string());
        assert_eq!(DqmcError::from_panic(p.as_ref()).severity, Severity::Fatal);
        let p: Box<dyn std::any::Any + Send> = Box::new("index out of bounds");
        assert_eq!(
            DqmcError::from_panic(p.as_ref()).severity,
            Severity::Transient
        );
        let p: Box<dyn std::any::Any + Send> = Box::new(42u32);
        let e = DqmcError::from_panic(p.as_ref());
        assert!(e.detail.contains("non-string"), "{e}");
    }
}
