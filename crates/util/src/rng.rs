//! Reproducible pseudo-random number generation.
//!
//! Implements Xoshiro256++ (Blackman & Vigna, 2019) seeded through SplitMix64,
//! the combination recommended by the algorithm's authors for seeding from a
//! single 64-bit value. The generator is small, passes BigCrush, and is more
//! than fast enough for Metropolis sampling where the linear-algebra kernels
//! dominate by orders of magnitude.
//!
//! DQMC runs must be *bit-reproducible* from a seed: a simulation's entire
//! acceptance history — and therefore every measured observable — is a pure
//! function of `(parameters, seed)`. Owning the generator (rather than
//! depending on an external crate) freezes that function permanently.

/// SplitMix64 step: used to expand a 64-bit seed into the 256-bit Xoshiro state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent seed for one stream of a structured run — e.g.
/// chain `substream` of grid point `stream` under a campaign's base seed.
///
/// Additive schemes (`seed + chain`, `seed + point`) collide as soon as two
/// axes step the same counter: point 0 / chain 1 and point 1 / chain 0 get
/// the same generator and their "independent" measurements are duplicates.
/// Here each coordinate passes through a full SplitMix64 finalizer before
/// the next is mixed in, so any change to `(base, stream, substream)` —
/// including base seeds that differ by 1 — lands in an unrelated part of
/// seed space.
///
/// # Examples
///
/// ```
/// use util::rng::derive_seed;
/// // The additive-collision case: distinct (point, chain) pairs whose sums
/// // coincide still get distinct seeds.
/// assert_ne!(derive_seed(42, 0, 1), derive_seed(42, 1, 0));
/// assert_ne!(derive_seed(42, 0, 1), derive_seed(43, 0, 0));
/// ```
pub fn derive_seed(base: u64, stream: u64, substream: u64) -> u64 {
    let mut s = base;
    let a = splitmix64(&mut s);
    let mut s = a ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let b = splitmix64(&mut s);
    let mut s = b ^ substream.wrapping_mul(0xD1B5_4A32_D192_ED03);
    splitmix64(&mut s)
}

/// Xoshiro256++ pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use util::Rng;
/// let mut rng = Rng::new(42);
/// let u = rng.next_f64();
/// assert!((0.0..1.0).contains(&u));
/// // Same seed, same stream:
/// assert_eq!(Rng::new(42).next_u64(), Rng::new(42).next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // The all-zero state is a fixed point of the transition function;
        // SplitMix64 cannot produce four zero outputs in a row, but guard anyway.
        debug_assert!(s.iter().any(|&x| x != 0));
        Rng { s }
    }

    /// Creates a generator from an explicit 256-bit state (must be non-zero).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&x| x != 0), "xoshiro state must be non-zero");
        Rng { s }
    }

    /// The current 256-bit state. `Rng::from_state(rng.state())` resumes the
    /// stream exactly where it left off — this is what makes checkpointed
    /// runs bit-identical to uninterrupted ones.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Serializes the state (four little-endian `u64`s).
    pub fn encode(&self, w: &mut crate::codec::ByteWriter) {
        for &x in &self.s {
            w.put_u64(x);
        }
    }

    /// Deserializes a state written by [`Rng::encode`]. The all-zero state is
    /// rejected as [`crate::codec::CodecError::Invalid`] rather than a panic,
    /// so corrupt checkpoints fail cleanly.
    pub fn decode(r: &mut crate::codec::ByteReader<'_>) -> Result<Self, crate::codec::CodecError> {
        let mut s = [0u64; 4];
        for x in &mut s {
            *x = r.get_u64()?;
        }
        if s.iter().all(|&x| x == 0) {
            return Err(crate::codec::CodecError::Invalid(
                "xoshiro state must be non-zero".into(),
            ));
        }
        Ok(Rng { s })
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; 2^-53 scaling yields [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)` using Lemire's multiply-shift rejection
    /// method (unbiased).
    #[inline]
    pub fn next_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_range requires n > 0");
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Random sign: `+1` or `-1` with equal probability.
    #[inline]
    pub fn next_sign(&mut self) -> i8 {
        if self.next_u64() & 1 == 0 {
            1
        } else {
            -1
        }
    }

    /// Standard normal deviate via Marsaglia polar method.
    pub fn next_normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Splits off an independent generator (jump via reseeding from output).
    ///
    /// Used to give each simulation phase or thread its own stream derived
    /// deterministically from the parent stream.
    pub fn split(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Fills a slice with uniform `[0,1)` values.
    pub fn fill_f64(&mut self, out: &mut [f64]) {
        for x in out {
            *x = self.next_f64();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector for xoshiro256++ from the authors' C implementation,
    /// state seeded as {1, 2, 3, 4}.
    #[test]
    fn matches_reference_vector() {
        let mut rng = Rng::from_state([1, 2, 3, 4]);
        let expected: [u64; 8] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
            14011001112246962877,
            12406186145184390807,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::new(0xDEADBEEF);
        let mut b = Rng::new(0xDEADBEEF);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "independent streams should rarely collide");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut rng = Rng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_bounds_and_coverage() {
        let mut rng = Rng::new(13);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let v = rng.next_range(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_unbiased_chi2() {
        let mut rng = Rng::new(17);
        let n = 6u64;
        let trials = 60_000;
        let mut counts = [0usize; 6];
        for _ in 0..trials {
            counts[rng.next_range(n) as usize] += 1;
        }
        let expected = trials as f64 / n as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // 5 dof; p=0.001 critical value ~20.5
        assert!(chi2 < 20.5, "chi2 {chi2}");
    }

    #[test]
    fn sign_is_balanced() {
        let mut rng = Rng::new(19);
        let sum: i64 = (0..100_000).map(|_| rng.next_sign() as i64).sum();
        assert!(sum.abs() < 2_000, "sum {sum}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::new(23);
        let n = 200_000;
        let mut m1 = 0.0;
        let mut m2 = 0.0;
        for _ in 0..n {
            let x = rng.next_normal();
            m1 += x;
            m2 += x * x;
        }
        m1 /= n as f64;
        m2 /= n as f64;
        assert!(m1.abs() < 0.01, "mean {m1}");
        assert!((m2 - 1.0).abs() < 0.02, "var {m2}");
    }

    #[test]
    fn split_streams_independent() {
        let mut parent = Rng::new(29);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_state_rejected() {
        let _ = Rng::from_state([0; 4]);
    }

    #[test]
    fn derived_seeds_collision_free_over_a_campaign() {
        // A realistic worst case: many base seeds one apart (users step
        // seeds between campaigns), each with a grid of points and chains.
        // Every (base, point, chain) triple must get a unique seed — the
        // additive scheme fails this immediately.
        let mut seen = std::collections::HashSet::new();
        for base in 1000..1010u64 {
            for point in 0..16u64 {
                for chain in 0..8u64 {
                    assert!(
                        seen.insert(derive_seed(base, point, chain)),
                        "collision at base {base} point {point} chain {chain}"
                    );
                }
            }
        }
        assert_eq!(seen.len(), 10 * 16 * 8);
    }

    #[test]
    fn derived_seeds_are_stable() {
        // The derivation is part of the reproducibility contract: published
        // results cite (base seed, grid) and must re-run bit-identically in
        // any future build. Pin the function's output.
        assert_eq!(derive_seed(0, 0, 0), derive_seed(0, 0, 0));
        let a = derive_seed(42, 3, 5);
        let b = derive_seed(42, 3, 5);
        assert_eq!(a, b);
        // Streams decorrelate: flipping any coordinate changes the seed.
        assert_ne!(derive_seed(42, 3, 5), derive_seed(42, 3, 6));
        assert_ne!(derive_seed(42, 3, 5), derive_seed(42, 4, 5));
        assert_ne!(derive_seed(42, 3, 5), derive_seed(43, 3, 5));
    }
}
