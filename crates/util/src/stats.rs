//! Statistics for Monte Carlo estimation and benchmark reporting.
//!
//! Three tools cover everything the paper reports:
//!
//! - [`RunningStats`]: numerically-stable (Welford) running mean/variance,
//! - [`BinnedAccumulator`]: bin-averaged Monte Carlo error bars — successive
//!   sweeps are correlated, so naive standard errors underestimate; binning
//!   into blocks longer than the autocorrelation time fixes that,
//! - [`FiveNumber`]: min / Q1 / median / Q3 / max summaries, the
//!   box-and-whisker statistic of the paper's Figure 2.

/// Numerically stable running mean and variance (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.variance() / self.n as f64).sqrt()
        }
    }

    /// Smallest observation (+inf if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Serializes the accumulator for checkpointing.
    pub fn encode(&self, w: &mut crate::codec::ByteWriter) {
        w.put_u64(self.n);
        w.put_f64(self.mean);
        w.put_f64(self.m2);
        w.put_f64(self.min);
        w.put_f64(self.max);
    }

    /// Deserializes an accumulator written by [`RunningStats::encode`].
    pub fn decode(r: &mut crate::codec::ByteReader<'_>) -> Result<Self, crate::codec::CodecError> {
        Ok(RunningStats {
            n: r.get_u64()?,
            mean: r.get_f64()?,
            m2: r.get_f64()?,
            min: r.get_f64()?,
            max: r.get_f64()?,
        })
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Bin-averaged accumulator for correlated Monte Carlo time series.
///
/// Observations are grouped into consecutive bins of `bin_size`; the bin
/// means are treated as (approximately) independent samples. Incomplete
/// trailing bins are discarded by [`BinnedAccumulator::mean_and_err`].
#[derive(Clone, Debug)]
pub struct BinnedAccumulator {
    bin_size: usize,
    current_sum: f64,
    current_count: usize,
    bins: Vec<f64>,
}

impl BinnedAccumulator {
    /// Creates an accumulator with the given bin size (≥ 1).
    pub fn new(bin_size: usize) -> Self {
        assert!(bin_size >= 1);
        BinnedAccumulator {
            bin_size,
            current_sum: 0.0,
            current_count: 0,
            bins: Vec::new(),
        }
    }

    /// Adds one (possibly autocorrelated) observation.
    pub fn push(&mut self, x: f64) {
        self.current_sum += x;
        self.current_count += 1;
        if self.current_count == self.bin_size {
            self.bins.push(self.current_sum / self.bin_size as f64);
            self.current_sum = 0.0;
            self.current_count = 0;
        }
    }

    /// Number of complete bins.
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// Total number of pushed observations, including the incomplete bin.
    pub fn count(&self) -> usize {
        self.bins.len() * self.bin_size + self.current_count
    }

    /// Mean and standard error estimated from complete bin means.
    ///
    /// Returns `(mean, err)`; `err` is 0 with fewer than two complete bins.
    pub fn mean_and_err(&self) -> (f64, f64) {
        let mut s = RunningStats::new();
        for &b in &self.bins {
            s.push(b);
        }
        (s.mean(), s.std_err())
    }

    /// Serializes the accumulator — bin size, the open partial bin, and every
    /// complete bin mean — for checkpointing.
    pub fn encode(&self, w: &mut crate::codec::ByteWriter) {
        w.put_u64(self.bin_size as u64);
        w.put_f64(self.current_sum);
        w.put_u64(self.current_count as u64);
        w.put_f64_slice(&self.bins);
    }

    /// Deserializes an accumulator written by [`BinnedAccumulator::encode`].
    /// A zero bin size or a partial-bin count at or past the bin size decodes
    /// to [`crate::codec::CodecError::Invalid`] instead of violating the
    /// accumulator's invariants.
    pub fn decode(r: &mut crate::codec::ByteReader<'_>) -> Result<Self, crate::codec::CodecError> {
        let bin_size = r.get_u64()? as usize;
        let current_sum = r.get_f64()?;
        let current_count = r.get_u64()? as usize;
        let bins = r.get_f64_vec()?;
        if bin_size == 0 {
            return Err(crate::codec::CodecError::Invalid(
                "bin size must be >= 1".into(),
            ));
        }
        if current_count >= bin_size {
            return Err(crate::codec::CodecError::Invalid(format!(
                "partial bin holds {current_count} observations but bins close at {bin_size}"
            )));
        }
        Ok(BinnedAccumulator {
            bin_size,
            current_sum,
            current_count,
            bins,
        })
    }

    /// Merges another accumulator's *complete* bins into this one
    /// (independent-chain ensembles; partial bins of `other` are dropped,
    /// and the bin sizes must match so bin means stay comparable).
    pub fn merge(&mut self, other: &BinnedAccumulator) {
        assert_eq!(
            self.bin_size, other.bin_size,
            "cannot merge accumulators with different bin sizes"
        );
        self.bins.extend_from_slice(&other.bins);
    }

    /// The complete bin means, in push order. Resampling estimators
    /// ([`jackknife_mean`], [`jackknife_ratio`]) operate on this view.
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// The configured bin size.
    pub fn bin_size(&self) -> usize {
        self.bin_size
    }
}

/// Delete-one jackknife estimate of the mean of `bins`: returns
/// `(mean, err)` where `err` is the jackknife standard error
/// `sqrt((n-1)/n · Σᵢ (θ̂ᵢ − θ̄)²)` over the leave-one-out means `θ̂ᵢ`.
///
/// For the plain mean the jackknife error coincides with the classical
/// standard error of the mean — the point of routing even this case through
/// the jackknife is that pooled sweep reports then quote *one* error
/// convention for every observable, linear or ratio. Fewer than two bins
/// yield an error of 0.
pub fn jackknife_mean(bins: &[f64]) -> (f64, f64) {
    let n = bins.len();
    if n == 0 {
        return (0.0, 0.0);
    }
    let total: f64 = bins.iter().sum();
    let mean = total / n as f64;
    if n < 2 {
        return (mean, 0.0);
    }
    let mut sq = 0.0;
    let mut loo_sum = 0.0;
    let nm1 = (n - 1) as f64;
    for &b in bins {
        loo_sum += (total - b) / nm1;
    }
    let loo_mean = loo_sum / n as f64;
    for &b in bins {
        let d = (total - b) / nm1 - loo_mean;
        sq += d * d;
    }
    (mean, (nm1 / n as f64 * sq).sqrt())
}

/// Delete-one jackknife of the ratio estimator `mean(num) / mean(den)` over
/// paired bins — the sign-problem observable estimator: each physical
/// observable is `⟨O·s⟩ / ⟨s⟩`, and the jackknife propagates the (correlated)
/// fluctuations of numerator and denominator through the nonlinearity, which
/// naive error division cannot.
///
/// `num` and `den` must pair up index-wise (bin `i` of both came from the
/// same block of sweeps). Returns `(ratio, err)`; with fewer than two bins
/// the error is 0, and an exactly-zero denominator sum yields `(0, 0)`
/// (the sign has collapsed; no estimate exists).
pub fn jackknife_ratio(num: &[f64], den: &[f64]) -> (f64, f64) {
    assert_eq!(num.len(), den.len(), "jackknife bins must pair up");
    let n = num.len();
    let sn: f64 = num.iter().sum();
    let sd: f64 = den.iter().sum();
    if n == 0 || sd == 0.0 {
        return (0.0, 0.0);
    }
    let ratio = sn / sd;
    if n < 2 {
        return (ratio, 0.0);
    }
    let mut loo_sum = 0.0;
    for i in 0..n {
        loo_sum += (sn - num[i]) / (sd - den[i]);
    }
    let loo_mean = loo_sum / n as f64;
    let mut sq = 0.0;
    for i in 0..n {
        let d = (sn - num[i]) / (sd - den[i]) - loo_mean;
        sq += d * d;
    }
    let nm1 = (n - 1) as f64;
    (ratio, (nm1 / n as f64 * sq).sqrt())
}

/// Five-number summary: the box-and-whisker statistic of the paper's Fig. 2.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FiveNumber {
    /// Minimum observation.
    pub min: f64,
    /// Lower quartile (Q1).
    pub q1: f64,
    /// Median (Q2).
    pub median: f64,
    /// Upper quartile (Q3).
    pub q3: f64,
    /// Maximum observation.
    pub max: f64,
}

impl FiveNumber {
    /// Computes the summary of a non-empty sample.
    ///
    /// Quartiles use linear interpolation between order statistics
    /// (the "R-7" definition used by most plotting software).
    pub fn from_samples(samples: &[f64]) -> FiveNumber {
        assert!(!samples.is_empty(), "five-number summary of empty sample");
        let mut v: Vec<f64> = samples.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        FiveNumber {
            min: v[0],
            q1: quantile_sorted(&v, 0.25),
            median: quantile_sorted(&v, 0.5),
            q3: quantile_sorted(&v, 0.75),
            max: v[v.len() - 1],
        }
    }
}

/// Integrated autocorrelation time of a Monte Carlo time series, estimated
/// with the standard self-consistent window (Sokal): sum normalised
/// autocorrelations ρ(t) for `t ≤ c·τ_int` with `c = 6`.
///
/// Returns `τ_int ≥ 0.5` (0.5 = fully independent samples). Used to choose
/// — and to *justify* — the measurement bin size: bins should span several
/// `2 τ_int` sweeps for the binned errors to be trustworthy.
pub fn autocorrelation_time(series: &[f64]) -> f64 {
    let n = series.len();
    if n < 8 {
        return 0.5;
    }
    let mean = series.iter().sum::<f64>() / n as f64;
    let var: f64 = series.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    if var <= 0.0 {
        return 0.5;
    }
    let rho = |t: usize| -> f64 {
        let mut s = 0.0;
        for i in 0..(n - t) {
            s += (series[i] - mean) * (series[i + t] - mean);
        }
        s / ((n - t) as f64 * var)
    };
    let mut tau = 0.5;
    for t in 1..(n / 2) {
        tau += rho(t);
        // Self-consistent window: stop once t outruns 6·τ_int.
        if (t as f64) >= 6.0 * tau {
            break;
        }
    }
    tau.max(0.5)
}

/// Linear-interpolated quantile of a sorted slice (R-7 definition).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=1.0).contains(&q));
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = q * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basic() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // population variance is 4 → sample variance 32/7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn running_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-12);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&RunningStats::new());
        assert_eq!(before, (a.count(), a.mean(), a.variance()));
    }

    #[test]
    fn binned_mean_matches_plain_mean() {
        let mut acc = BinnedAccumulator::new(5);
        for i in 0..100 {
            acc.push(i as f64);
        }
        let (mean, _) = acc.mean_and_err();
        assert!((mean - 49.5).abs() < 1e-12);
        assert_eq!(acc.bin_count(), 20);
        assert_eq!(acc.count(), 100);
    }

    #[test]
    fn binning_inflates_error_for_correlated_series() {
        // Strongly correlated series: long plateaus.
        let mut naive = BinnedAccumulator::new(1);
        let mut binned = BinnedAccumulator::new(50);
        let mut rngstate = 1u64;
        let mut level = 0.0;
        for i in 0..5000 {
            if i % 50 == 0 {
                // pseudo-random level change
                rngstate = rngstate.wrapping_mul(6364136223846793005).wrapping_add(1);
                level = (rngstate >> 40) as f64 / (1u64 << 24) as f64;
            }
            naive.push(level);
            binned.push(level);
        }
        let (_, e_naive) = naive.mean_and_err();
        let (_, e_binned) = binned.mean_and_err();
        assert!(
            e_binned > 3.0 * e_naive,
            "binned {e_binned} vs naive {e_naive}"
        );
    }

    #[test]
    fn binned_merge_pools_bins() {
        let mut a = BinnedAccumulator::new(2);
        let mut b = BinnedAccumulator::new(2);
        for x in [1.0, 3.0, 5.0, 7.0] {
            a.push(x);
        }
        for x in [9.0, 11.0, 100.0] {
            b.push(x); // the trailing 100.0 is an incomplete bin: dropped
        }
        a.merge(&b);
        assert_eq!(a.bin_count(), 3);
        let (mean, _) = a.mean_and_err();
        assert!((mean - (2.0 + 6.0 + 10.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different bin sizes")]
    fn binned_merge_rejects_mismatched_bins() {
        let mut a = BinnedAccumulator::new(2);
        let b = BinnedAccumulator::new(3);
        a.merge(&b);
    }

    #[test]
    fn five_number_of_known_sample() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        let f = FiveNumber::from_samples(&v);
        assert_eq!(f.min, 1.0);
        assert_eq!(f.q1, 2.0);
        assert_eq!(f.median, 3.0);
        assert_eq!(f.q3, 4.0);
        assert_eq!(f.max, 5.0);
    }

    #[test]
    fn five_number_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        let f = FiveNumber::from_samples(&v);
        assert!((f.q1 - 1.75).abs() < 1e-12);
        assert!((f.median - 2.5).abs() < 1e-12);
        assert!((f.q3 - 3.25).abs() < 1e-12);
    }

    #[test]
    fn five_number_unsorted_input() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        let f = FiveNumber::from_samples(&v);
        assert_eq!(f.median, 3.0);
    }

    #[test]
    fn autocorrelation_of_independent_series_is_half() {
        // A deterministic low-discrepancy stream behaves as independent.
        let mut state = 1u64;
        let xs: Vec<f64> = (0..4000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect();
        let tau = autocorrelation_time(&xs);
        assert!((tau - 0.5).abs() < 0.2, "tau = {tau}");
    }

    #[test]
    fn autocorrelation_detects_plateaus() {
        // Series constant over stretches of 20: τ_int ≈ 10 (≈ (ℓ+1)/2).
        let mut state = 7u64;
        let mut xs = Vec::new();
        for _ in 0..300 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let level = (state >> 11) as f64 / (1u64 << 53) as f64;
            xs.extend(std::iter::repeat_n(level, 20));
        }
        let tau = autocorrelation_time(&xs);
        assert!((5.0..20.0).contains(&tau), "tau = {tau}");
    }

    #[test]
    fn autocorrelation_degenerate_inputs() {
        assert_eq!(autocorrelation_time(&[]), 0.5);
        assert_eq!(autocorrelation_time(&[1.0, 2.0]), 0.5);
        assert_eq!(autocorrelation_time(&vec![3.0; 100]), 0.5);
    }

    #[test]
    fn quantile_single_element() {
        assert_eq!(quantile_sorted(&[7.0], 0.25), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn five_number_empty_panics() {
        let _ = FiveNumber::from_samples(&[]);
    }

    #[test]
    fn jackknife_mean_matches_classical_error_on_iid_series() {
        // For a plain mean the delete-one jackknife reproduces the classical
        // standard error exactly (algebraic identity, not asymptotics).
        let mut rng = crate::Rng::new(11);
        let xs: Vec<f64> = (0..200).map(|_| rng.next_normal()).collect();
        let (jm, je) = jackknife_mean(&xs);
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert!((jm - s.mean()).abs() < 1e-12, "{jm} vs {}", s.mean());
        assert!(
            (je - s.std_err()).abs() < 1e-12 * s.std_err(),
            "{je} vs {}",
            s.std_err()
        );
    }

    #[test]
    fn jackknife_mean_error_matches_known_variance() {
        // Unit-variance synthetic series: the error of the mean of n samples
        // must come out near 1/sqrt(n).
        let n = 4096;
        let mut rng = crate::Rng::new(5);
        let xs: Vec<f64> = (0..n).map(|_| rng.next_normal()).collect();
        let (_, err) = jackknife_mean(&xs);
        let expect = 1.0 / (n as f64).sqrt();
        assert!(
            (err - expect).abs() < 0.1 * expect,
            "err {err} vs expected {expect}"
        );
    }

    #[test]
    fn jackknife_ratio_constant_ratio_has_zero_error() {
        // num = c·den bin-wise ⇒ every leave-one-out ratio is exactly c.
        let den = [1.0, 2.0, 0.5, 1.5, 3.0];
        let num: Vec<f64> = den.iter().map(|d| 0.25 * d).collect();
        let (r, e) = jackknife_ratio(&num, &den);
        assert!((r - 0.25).abs() < 1e-15);
        assert!(e < 1e-15);
    }

    #[test]
    fn jackknife_ratio_with_unit_denominator_reduces_to_mean() {
        let num = [0.3, 0.1, 0.4, 0.15, 0.9, 0.2];
        let den = [1.0; 6];
        let (r, e) = jackknife_ratio(&num, &den);
        let (m, me) = jackknife_mean(&num);
        assert!((r - m).abs() < 1e-15);
        assert!((e - me).abs() < 1e-15);
    }

    #[test]
    fn jackknife_degenerate_inputs() {
        assert_eq!(jackknife_mean(&[]), (0.0, 0.0));
        assert_eq!(jackknife_mean(&[2.5]), (2.5, 0.0));
        // A collapsed sign (zero denominator) reports "no estimate", not NaN.
        assert_eq!(jackknife_ratio(&[1.0, -1.0], &[1.0, -1.0]), (0.0, 0.0));
    }

    #[test]
    fn binned_mean_invariant_under_bin_size() {
        // Pushing the same series with different bin sizes must give the
        // same mean whenever the series divides evenly into bins; only the
        // error estimate is allowed to move (that is binning's purpose).
        let mut rng = crate::Rng::new(17);
        let xs: Vec<f64> = (0..240).map(|_| rng.next_f64()).collect();
        let mut means = Vec::new();
        for bin in [1usize, 2, 4, 8] {
            let mut acc = BinnedAccumulator::new(bin);
            for &x in &xs {
                acc.push(x);
            }
            means.push(acc.mean_and_err().0);
        }
        for m in &means[1..] {
            assert!((m - means[0]).abs() < 1e-12, "{m} vs {}", means[0]);
        }
    }

    #[test]
    fn bins_view_exposes_complete_bins_only() {
        let mut acc = BinnedAccumulator::new(2);
        for x in [1.0, 3.0, 5.0, 7.0, 9.0] {
            acc.push(x);
        }
        assert_eq!(acc.bins(), &[2.0, 6.0]);
        assert_eq!(acc.bin_size(), 2);
    }
}

#[cfg(test)]
mod shard_merge_props {
    //! Property tests for the fleet-sharding stats contract: splitting a
    //! series across shard accumulators, serialising each, and merging the
    //! decoded copies must be indistinguishable from merging the live
    //! accumulators — and, when splits are bin-aligned, from never having
    //! sharded at all.

    use super::{jackknife_mean, BinnedAccumulator};
    use crate::codec::{ByteReader, ByteWriter};
    use proptest::prelude::*;

    /// Strategy: a sample series, bin size, and shard split points.
    fn series_and_splits() -> impl Strategy<Value = (Vec<f64>, usize, Vec<usize>)> {
        (1usize..=6, 1usize..=5, 0u64..1000).prop_map(|(nshards, bin, seed)| {
            let mut rng = crate::Rng::new(seed);
            let len = 8 + (rng.next_u64() % 120) as usize;
            let xs: Vec<f64> = (0..len).map(|_| rng.next_f64() * 4.0 - 2.0).collect();
            // nshards-1 split points anywhere in the series, sorted.
            let mut cuts: Vec<usize> = (1..nshards)
                .map(|_| (rng.next_u64() % (len as u64 + 1)) as usize)
                .collect();
            cuts.sort_unstable();
            (xs, bin, cuts)
        })
    }

    fn segments<'a>(xs: &'a [f64], cuts: &[usize]) -> Vec<&'a [f64]> {
        let mut out = Vec::with_capacity(cuts.len() + 1);
        let mut start = 0;
        for &c in cuts {
            out.push(&xs[start..c]);
            start = c;
        }
        out.push(&xs[start..]);
        out
    }

    fn accumulate(bin: usize, xs: &[f64]) -> BinnedAccumulator {
        let mut acc = BinnedAccumulator::new(bin);
        for &x in xs {
            acc.push(x);
        }
        acc
    }

    fn round_trip(acc: &BinnedAccumulator) -> BinnedAccumulator {
        let mut w = ByteWriter::new();
        acc.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = BinnedAccumulator::decode(&mut r).expect("round trip");
        assert!(r.is_exhausted(), "codec left trailing bytes");
        back
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn decoded_shard_merge_equals_live_merge((xs, bin, cuts) in series_and_splits()) {
            let shards: Vec<BinnedAccumulator> =
                segments(&xs, &cuts).iter().map(|s| accumulate(bin, s)).collect();

            let mut live = BinnedAccumulator::new(bin);
            let mut decoded = BinnedAccumulator::new(bin);
            for s in &shards {
                live.merge(s);
                decoded.merge(&round_trip(s));
            }

            // Bit-for-bit equality: the codec may not perturb a single bin,
            // so every downstream estimator agrees exactly.
            prop_assert_eq!(live.bins(), decoded.bins());
            prop_assert_eq!(live.mean_and_err(), decoded.mean_and_err());
            prop_assert_eq!(
                jackknife_mean(live.bins()),
                jackknife_mean(decoded.bins())
            );
        }

        #[test]
        fn bin_aligned_shards_merge_back_to_the_unsharded_bins(
            (xs, bin, cuts) in series_and_splits()
        ) {
            // Align every split to a bin boundary — the fleet invariant: a
            // shard boundary never cuts a measurement bin in half.
            let aligned: Vec<usize> = cuts.iter().map(|c| c - c % bin).collect();
            let mono = accumulate(bin, &xs);
            let mut merged = BinnedAccumulator::new(bin);
            for s in segments(&xs, &aligned) {
                merged.merge(&round_trip(&accumulate(bin, s)));
            }
            prop_assert_eq!(mono.bins(), merged.bins());
            prop_assert_eq!(jackknife_mean(mono.bins()), jackknife_mean(merged.bins()));
        }
    }
}
