//! Liveness primitives: heartbeat-stamped run tokens.
//!
//! A [`RunToken`] is shared between a worker running a simulation and the
//! supervisor watching it. The worker *stamps* monotone progress (in
//! logical units — sweeps executed, checkpoints written — never wall time,
//! so watchdog decisions stay byte-reproducible) and polls the token for a
//! cooperative cancellation request at every safe park point.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A progress/cancellation token shared between worker and watchdog.
///
/// All operations are lock-free; stamping in the hot loop costs one relaxed
/// atomic store.
#[derive(Debug, Default)]
pub struct RunToken {
    progress: AtomicU64,
    cancelled: AtomicBool,
}

impl RunToken {
    /// A fresh token with zero progress and no cancellation pending.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records monotone progress; stale (smaller) stamps are kept anyway —
    /// the watchdog only cares that the value *moved*.
    pub fn stamp(&self, progress: u64) {
        self.progress.store(progress, Ordering::Relaxed);
    }

    /// Advances progress by one logical unit (one sweep, one checkpoint) —
    /// the common stamping pattern at loop boundaries.
    pub fn tick(&self) {
        self.progress.fetch_add(1, Ordering::Relaxed);
    }

    /// The most recent progress stamp.
    pub fn progress(&self) -> u64 {
        self.progress.load(Ordering::Relaxed)
    }

    /// Requests a cooperative park at the next safe boundary.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether a cooperative park has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Clears both progress and any pending cancellation, so one token can
    /// be reused across the jobs a worker runs back-to-back.
    pub fn reset(&self) {
        self.progress.store(0, Ordering::Relaxed);
        self.cancelled.store(false, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_and_cancel_round_trip() {
        let t = RunToken::new();
        assert_eq!(t.progress(), 0);
        assert!(!t.is_cancelled());
        t.stamp(7);
        t.cancel();
        assert_eq!(t.progress(), 7);
        assert!(t.is_cancelled());
        t.reset();
        assert_eq!(t.progress(), 0);
        assert!(!t.is_cancelled());
    }
}
