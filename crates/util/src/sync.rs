//! Synchronization primitives with poison recovery and loom switching.
//!
//! Every lock-bearing type in the workspace (`sched::queue`, `sched::trace`,
//! `sched::watchdog`, `gpusim::pool`) goes through this module instead of
//! naming `std::sync` directly, for two reasons:
//!
//! 1. **One audited poison-recovery path.** [`relock`] is the single copy of
//!    the `unwrap_or_else(PoisonError::into_inner)` idiom that used to be
//!    triplicated across queue/trace/watchdog. The safety argument lives
//!    here once: recovery is sound only for locks whose critical sections
//!    leave no partially-applied state, which is a per-call-site audit —
//!    see the lock registry in `lock_order.toml`.
//!
//! 2. **Model checking.** Under `--cfg loom` (`RUSTFLAGS="--cfg loom"`),
//!    [`Mutex`] and [`Condvar`] resolve to the loom shim's
//!    schedule-perturbing wrappers, so the loom models in
//!    `crates/sched/tests/loom_models.rs` explore the *production*
//!    queue/pool/watchdog code under many interleavings, not a re-model of
//!    it. Ordinary builds resolve straight to `std::sync` with zero
//!    overhead.

#[cfg(loom)]
pub use loom::sync::{Condvar, Mutex};
#[cfg(not(loom))]
pub use std::sync::{Condvar, Mutex};

// Guard/error types are std's in both configurations (the loom shim wraps
// std rather than re-implementing it), so poisoning behaves identically
// under the model checker and in production.
pub use std::sync::{LockResult, MutexGuard, PoisonError, WaitTimeoutResult};

/// Recovers the payload of a poisoned lock operation.
///
/// A poisoned `Mutex` means some thread panicked while holding the guard;
/// the data is still there and still consistent *provided every critical
/// section on that lock is transactional* (no partially-applied state at
/// any panic point). All workspace locks are audited to that standard —
/// each holds a single short update with no observable intermediate state
/// — so recovery is the correct policy: one worker's death must not take
/// down the scheduler (the chaos tier's first requirement).
///
/// Generic over the payload so it covers plain `lock()` results, `wait()`
/// results, and `wait_timeout()`'s `(guard, WaitTimeoutResult)` tuple.
pub fn relock<T>(r: LockResult<T>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn relock_passes_through_clean_guards() {
        let m = Mutex::new(5u32);
        let g = relock(m.lock());
        assert_eq!(*g, 5);
    }

    #[test]
    fn relock_recovers_poisoned_guard_with_data_intact() {
        let m = Arc::new(Mutex::new(vec![1, 2, 3]));
        let m2 = Arc::clone(&m);
        // dqmc-lint: allow(panic_site) — the panic *is* the fixture.
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poisoning for test");
        })
        .join();
        let g = relock(m.lock());
        assert_eq!(*g, vec![1, 2, 3], "data survives poisoning");
    }

    #[test]
    fn relock_recovers_wait_timeout_tuple() {
        let m = Mutex::new(0u8);
        let cv = Condvar::new();
        let g = relock(m.lock());
        let (g, timed_out) = relock(cv.wait_timeout(g, std::time::Duration::from_millis(1)));
        assert!(timed_out.timed_out());
        assert_eq!(*g, 0);
    }
}
