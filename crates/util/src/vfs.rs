//! The workspace's single audited write path, with deterministic I/O
//! fault injection.
//!
//! Every on-disk format in the workspace — DQCP checkpoints, DQRC cache
//! entries, DQSM manifests, DQSR shard reports, heartbeat files, bench
//! artifacts — is published through [`write_atomic`]. The sequence is the
//! full five-syscall durability dance, including the parent-directory
//! fsync that makes the rename itself durable:
//!
//! ```text
//!   1. create   .{name}.{pid}.{seq}.tmp        (unique per write)
//!   2. write    payload into the temp file
//!   3. fsync    the temp file
//!   4. rename   temp -> destination            (atomic replace)
//!   5. fsync    the parent directory           (persist the rename)
//! ```
//!
//! Mirroring `gpusim::faults` for the device model, this module carries a
//! process-global, seed-deterministic [`FaultPlan`] that can script torn
//! writes, short writes, ENOSPC, fsync failure, rename failure, and a
//! hard crash-point between any two syscalls of the sequence. Unarmed,
//! the only cost is one relaxed atomic load per call. Plans arm either
//! programmatically ([`arm`], which returns a guard serialising faulted
//! sections across test threads) or from the [`ENV_FAULTS`] environment
//! DSL, e.g.:
//!
//! ```text
//!   DQMC_VFS_FAULTS="seed=7;scope=.dqrc;enospc@2;fsync@3-4;crash@4;mode=sim"
//! ```
//!
//! Category ordinals (`enospc@2`) are 1-based per-category syscall counts;
//! `crash@n` counts every in-scope syscall globally, so a crash-point can
//! be placed between any two syscalls of any write. Writes whose path does
//! not contain `scope` bypass the plan entirely and consume no ordinals,
//! keeping fault schedules deterministic even when unrelated files (logs,
//! heartbeats) are written concurrently.
//!
//! A crash applies the *adversarial* residue for its point — the worst
//! state a real power cut could leave given which syscalls had been made
//! durable — then either exits the process ([`CrashMode::Exit`], for
//! child-process probes) or disarms and returns an error
//! ([`CrashMode::Simulate`], for in-process enumeration):
//!
//! | crash before | durable residue                                     |
//! |--------------|-----------------------------------------------------|
//! | 1 (create)   | nothing new                                         |
//! | 2 (write)    | empty temp file, old destination                    |
//! | 3 (fsync)    | *torn* temp file (seeded prefix), old destination   |
//! | 4 (rename)   | complete temp file, old destination                 |
//! | 5 (dirsync)  | rename rolled back: old destination restored,       |
//! |              | complete temp file still present                    |
//!
//! [`scrub_tmp`] removes the temp-file debris such crashes strand, and
//! [`write_atomic_retry`] layers a deterministic bounded exponential
//! backoff over transient failures (ENOSPC, EIO, interruption) for
//! callers that should ride out a briefly-full disk.

use crate::rng::Rng;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, Once};
use std::time::Duration;

/// Environment variable holding a fault-plan DSL; parsed and armed once,
/// on the first `vfs` call of the process.
pub const ENV_FAULTS: &str = "DQMC_VFS_FAULTS";

/// Exit code used by [`CrashMode::Exit`] when the DSL names no other.
pub const CRASH_EXIT_CODE: i32 = 84;

/// Attempts used by the workspace's standard retry policy
/// ([`write_atomic_retry`] callers in the fleet child and cache backfill).
pub const RETRY_ATTEMPTS: u32 = 4;

/// Base delay of the standard retry policy; doubles per attempt, capped
/// at [`RETRY_MAX_DELAY`]. Fixed constants — no jitter — so retry
/// schedules are reproducible.
pub const RETRY_BASE_DELAY: Duration = Duration::from_millis(10);

/// Ceiling on a single retry backoff sleep.
pub const RETRY_MAX_DELAY: Duration = Duration::from_millis(160);

/// What a scripted crash-point does once its residue is on disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashMode {
    /// Terminate the process with this exit code. For child-process
    /// probes observed by a supervisor or test harness.
    Exit(i32),
    /// Disarm the plan and return an [`io::Error`] to the caller. For
    /// in-process crash-point enumeration: recovery code then runs in
    /// the same process against the residue.
    Simulate,
}

/// A deterministic, scriptable schedule of I/O faults, mirroring the
/// device `FaultPlan` in `gpusim::faults`.
///
/// Per-category lists hold 1-based syscall ordinals *within that
/// category* (the 2nd write, the 1st rename, ...). Each ordinal fires
/// once. The crash-point, if any, counts every in-scope syscall of the
/// process globally.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Only paths containing this substring are subject to the plan.
    scope: Option<String>,
    /// Temp-file creations that fail with EIO.
    create_fail: Vec<u64>,
    /// Writes that persist only a seeded prefix, then fail Interrupted.
    short_writes: Vec<u64>,
    /// Writes that fail with ENOSPC before writing anything.
    enospc: Vec<u64>,
    /// File fsyncs that fail with EIO.
    fsync_fail: Vec<u64>,
    /// Renames that fail with EIO.
    rename_fail: Vec<u64>,
    /// Parent-directory fsyncs that fail with EIO.
    dirsync_fail: Vec<u64>,
    /// Global in-scope syscall ordinal at which to crash, and how.
    crash: Option<(u64, CrashMode)>,
    /// Lazily-seeded stream for torn-write prefix lengths (seed 0 when
    /// unset, like the device plan).
    rng: Option<Rng>,
}

impl FaultPlan {
    /// An empty plan: every syscall succeeds.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// True when no fault of any kind is scheduled.
    pub fn is_empty(&self) -> bool {
        self.create_fail.is_empty()
            && self.short_writes.is_empty()
            && self.enospc.is_empty()
            && self.fsync_fail.is_empty()
            && self.rename_fail.is_empty()
            && self.dirsync_fail.is_empty()
            && self.crash.is_none()
    }

    /// Restricts the plan to paths containing `substr`; out-of-scope
    /// writes bypass the plan and consume no ordinals.
    pub fn with_scope(mut self, substr: &str) -> Self {
        self.scope = Some(substr.to_string());
        self
    }

    /// Seeds the stream that picks torn-write prefix lengths.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = Some(Rng::new(seed));
        self
    }

    /// The n-th temp-file creation fails with EIO.
    pub fn fail_create(mut self, n: u64) -> Self {
        self.create_fail.push(n);
        self
    }

    /// The n-th write persists only a seeded prefix and fails Interrupted.
    pub fn short_write(mut self, n: u64) -> Self {
        self.short_writes.push(n);
        self
    }

    /// The n-th write fails with ENOSPC.
    pub fn enospc(mut self, n: u64) -> Self {
        self.enospc.push(n);
        self
    }

    /// Every write in `[lo, hi]` (1-based, inclusive) fails with ENOSPC —
    /// a disk that stays full for a while.
    pub fn enospc_window(mut self, lo: u64, hi: u64) -> Self {
        self.enospc.extend(lo..=hi.min(lo.saturating_add(1_000_000)));
        self
    }

    /// The n-th file fsync fails with EIO.
    pub fn fail_fsync(mut self, n: u64) -> Self {
        self.fsync_fail.push(n);
        self
    }

    /// The n-th rename fails with EIO.
    pub fn fail_rename(mut self, n: u64) -> Self {
        self.rename_fail.push(n);
        self
    }

    /// The n-th parent-directory fsync fails with EIO.
    pub fn fail_dirsync(mut self, n: u64) -> Self {
        self.dirsync_fail.push(n);
        self
    }

    /// Crash immediately *before* the n-th in-scope syscall of the
    /// process (globally counted), leaving the adversarial residue.
    pub fn crash_at(mut self, n: u64, mode: CrashMode) -> Self {
        self.crash = Some((n, mode));
        self
    }

    /// Parses the [`ENV_FAULTS`] DSL: semicolon-separated items among
    /// `seed=N`, `scope=SUBSTR`, `mode=exit|sim`, `code=N`, `crash@N`,
    /// and `CAT@N` / `CAT@LO-HI` for categories `create`, `short`,
    /// `enospc`, `fsync`, `rename`, `dirsync`.
    pub fn parse(dsl: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        let mut crash_at: Option<u64> = None;
        let mut mode_sim = false;
        let mut exit_code = CRASH_EXIT_CODE;
        for item in dsl.split(';') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            if let Some((key, val)) = item.split_once('=') {
                match key.trim() {
                    "seed" => {
                        let seed: u64 =
                            val.trim().parse().map_err(|_| format!("bad seed '{val}'"))?;
                        plan = plan.with_seed(seed);
                    }
                    "scope" => plan = plan.with_scope(val.trim()),
                    "mode" => match val.trim() {
                        "exit" => mode_sim = false,
                        "sim" => mode_sim = true,
                        other => return Err(format!("bad mode '{other}' (exit|sim)")),
                    },
                    "code" => {
                        exit_code =
                            val.trim().parse().map_err(|_| format!("bad code '{val}'"))?;
                    }
                    other => return Err(format!("unknown key '{other}'")),
                }
                continue;
            }
            let Some((cat, ord)) = item.split_once('@') else {
                return Err(format!("bad item '{item}' (want key=val or cat@n)"));
            };
            let (lo, hi) = match ord.split_once('-') {
                Some((a, b)) => (
                    a.parse::<u64>().map_err(|_| format!("bad ordinal '{ord}'"))?,
                    b.parse::<u64>().map_err(|_| format!("bad ordinal '{ord}'"))?,
                ),
                None => {
                    let n: u64 = ord.parse().map_err(|_| format!("bad ordinal '{ord}'"))?;
                    (n, n)
                }
            };
            if lo == 0 || hi < lo {
                return Err(format!("ordinals are 1-based and lo<=hi, got '{ord}'"));
            }
            match cat.trim() {
                "create" => (lo..=hi).for_each(|n| plan.create_fail.push(n)),
                "short" => (lo..=hi).for_each(|n| plan.short_writes.push(n)),
                "enospc" => plan = plan.enospc_window(lo, hi),
                "fsync" => (lo..=hi).for_each(|n| plan.fsync_fail.push(n)),
                "rename" => (lo..=hi).for_each(|n| plan.rename_fail.push(n)),
                "dirsync" => (lo..=hi).for_each(|n| plan.dirsync_fail.push(n)),
                "crash" => {
                    if lo != hi {
                        return Err("crash@ takes a single ordinal".to_string());
                    }
                    crash_at = Some(lo);
                }
                other => return Err(format!("unknown category '{other}'")),
            }
        }
        if let Some(n) = crash_at {
            let mode = if mode_sim {
                CrashMode::Simulate
            } else {
                CrashMode::Exit(exit_code)
            };
            plan.crash = Some((n, mode));
        }
        Ok(plan)
    }

    /// The torn-write rng, seeded lazily with 0 like the device plan.
    fn rng(&mut self) -> &mut Rng {
        self.rng.get_or_insert_with(|| Rng::new(0))
    }
}

/// Removes `n` from `list` if present, reporting whether it fired.
/// One-shot: a consumed ordinal never fires again.
fn take(list: &mut Vec<u64>, n: u64) -> bool {
    match list.iter().position(|&x| x == n) {
        Some(i) => {
            list.swap_remove(i);
            true
        }
        None => false,
    }
}

/// The armed plan plus its per-category and global syscall counters.
struct Armed {
    plan: FaultPlan,
    creates: u64,
    writes: u64,
    fsyncs: u64,
    renames: u64,
    dirsyncs: u64,
    syscalls: u64,
}

/// Fast-path gate: one relaxed load decides unarmed writes.
static ARMED: AtomicBool = AtomicBool::new(false);
/// The armed plan. Plain std Mutex: leaf lock, never held across another
/// lock, and `util` is outside the loom-modelled lock scopes.
static STATE: Mutex<Option<Armed>> = Mutex::new(None);
/// Serialises faulted sections across test threads: the plan is
/// process-global, so two tests arming plans concurrently would steal
/// each other's ordinals.
static SESSION: Mutex<()> = Mutex::new(());
/// Uniquifies temp names within the process.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
/// Arms from [`ENV_FAULTS`] at most once per process.
static ENV_ARM: Once = Once::new();

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Guard returned by [`arm`]: holds the session lock and disarms the
/// plan when dropped.
pub struct ArmGuard {
    _session: MutexGuard<'static, ()>,
}

impl Drop for ArmGuard {
    fn drop(&mut self) {
        disarm();
    }
}

/// Arms `plan` process-wide, returning a guard that disarms it on drop.
/// Blocks until any other armed section (test) releases the session.
pub fn arm(plan: FaultPlan) -> ArmGuard {
    let session = relock(&SESSION);
    *relock(&STATE) = Some(Armed {
        plan,
        creates: 0,
        writes: 0,
        fsyncs: 0,
        renames: 0,
        dirsyncs: 0,
        syscalls: 0,
    });
    ARMED.store(true, Ordering::SeqCst);
    ArmGuard { _session: session }
}

/// Disarms any active plan. Idempotent.
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
    *relock(&STATE) = None;
}

/// True while a fault plan is armed.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Arms from [`ENV_FAULTS`] on the first vfs call of the process. A
/// malformed DSL aborts loudly rather than silently running faultless.
fn ensure_env_arm() {
    ENV_ARM.call_once(|| {
        let Ok(dsl) = std::env::var(ENV_FAULTS) else {
            return;
        };
        if dsl.trim().is_empty() {
            return;
        }
        match FaultPlan::parse(&dsl) {
            Ok(plan) if !plan.is_empty() || plan.scope.is_some() => {
                *relock(&STATE) = Some(Armed {
                    plan,
                    creates: 0,
                    writes: 0,
                    fsyncs: 0,
                    renames: 0,
                    dirsyncs: 0,
                    syscalls: 0,
                });
                ARMED.store(true, Ordering::SeqCst);
            }
            Ok(_) => {}
            Err(e) => {
                eprintln!("fatal: {ENV_FAULTS}: {e}");
                std::process::exit(2);
            }
        }
    });
}

/// The unique temp path for one atomic write of `path`:
/// `.{name}.{pid}.{seq}.tmp` in the same directory.
fn tmp_path(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unnamed".to_string());
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    path.with_file_name(format!(".{}.{}.{}.tmp", name, std::process::id(), seq))
}

/// Opens and fsyncs the parent directory of `path`, making a completed
/// rename durable.
fn sync_parent(path: &Path) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    File::open(parent)?.sync_all()
}

fn inj(kind: io::ErrorKind, what: &str) -> io::Error {
    io::Error::new(kind, format!("injected fault: {what}"))
}

/// An injected OS-level error. Returned raw (not wrapped with context)
/// so `raw_os_error()` survives for callers classifying transience.
fn inj_os(code: i32, _what: &str) -> io::Error {
    io::Error::from_raw_os_error(code)
}

/// Writes `bytes` to `path` atomically and durably: unique temp file in
/// the same directory, write, fsync, rename over `path`, fsync of the
/// parent directory. On any error before the rename the temp file is
/// removed; after a failed dirsync the new destination is left in place
/// (the rename happened — only its durability is unproven).
///
/// This is the workspace's only sanctioned file-publication path (lint
/// R10 enforces that); when a [`FaultPlan`] is armed and `path` is in
/// scope, each of the five syscalls consults the plan first.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    ensure_env_arm();
    if !ARMED.load(Ordering::Relaxed) {
        return write_atomic_plain(path, bytes);
    }
    write_atomic_armed(path, bytes)
}

/// The passthrough sequence used when no plan is armed (or the path is
/// out of scope).
fn write_atomic_plain(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    let cleanup = |e: io::Error| {
        let _ = fs::remove_file(&tmp);
        Err(e)
    };
    let mut f = match File::create(&tmp) {
        Ok(f) => f,
        Err(e) => return Err(e),
    };
    if let Err(e) = f.write_all(bytes) {
        drop(f);
        return cleanup(e);
    }
    if let Err(e) = f.sync_all() {
        drop(f);
        return cleanup(e);
    }
    drop(f);
    if let Err(e) = fs::rename(&tmp, path) {
        return cleanup(e);
    }
    sync_parent(path)
}

/// One atomic write under an armed plan. Holds the state lock for the
/// whole sequence so concurrent faulted writes interleave at write
/// granularity, keeping ordinal consumption deterministic.
fn write_atomic_armed(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut guard = relock(&STATE);
    let in_scope = match guard.as_ref() {
        None => false,
        Some(st) => match &st.plan.scope {
            Some(scope) => path.to_string_lossy().contains(scope.as_str()),
            None => true,
        },
    };
    if !in_scope {
        drop(guard);
        return write_atomic_plain(path, bytes);
    }

    let tmp = tmp_path(path);
    let cleanup = |e: io::Error| {
        let _ = fs::remove_file(&tmp);
        Err(e)
    };

    // Syscall 1: create the temp file.
    if let Some(e) = crash_check(&mut guard, path, &tmp, bytes, None, 1) {
        return Err(e);
    }
    let st = guard.as_mut().expect("armed state");
    st.creates += 1;
    if take(&mut st.plan.create_fail, st.creates) {
        return Err(inj_os(5, "temp-file create failed"));
    }
    let mut f = File::create(&tmp)?;

    // Syscall 2: write the payload.
    if let Some(e) = crash_check(&mut guard, path, &tmp, bytes, None, 2) {
        return Err(e);
    }
    let st = guard.as_mut().expect("armed state");
    st.writes += 1;
    if take(&mut st.plan.enospc, st.writes) {
        drop(f);
        return cleanup(inj_os(28, "write hit ENOSPC"));
    }
    if take(&mut st.plan.short_writes, st.writes) {
        let cut = st.plan.rng().next_range(bytes.len().max(1) as u64) as usize;
        let _ = f.write_all(&bytes[..cut.min(bytes.len())]);
        drop(f);
        return cleanup(inj(io::ErrorKind::Interrupted, "short write"));
    }
    if let Err(e) = f.write_all(bytes) {
        drop(f);
        return cleanup(e);
    }

    // Syscall 3: fsync the temp file.
    if let Some(e) = crash_check(&mut guard, path, &tmp, bytes, None, 3) {
        return Err(e);
    }
    let st = guard.as_mut().expect("armed state");
    st.fsyncs += 1;
    if take(&mut st.plan.fsync_fail, st.fsyncs) {
        drop(f);
        return cleanup(inj_os(5, "fsync failed"));
    }
    if let Err(e) = f.sync_all() {
        drop(f);
        return cleanup(e);
    }
    drop(f);

    // Snapshot the destination before the rename clobbers it: the
    // crash-before-dirsync residue must restore these exact bytes.
    let old_dst = fs::read(path).ok();

    // Syscall 4: rename over the destination.
    if let Some(e) = crash_check(&mut guard, path, &tmp, bytes, None, 4) {
        return Err(e);
    }
    let st = guard.as_mut().expect("armed state");
    st.renames += 1;
    if take(&mut st.plan.rename_fail, st.renames) {
        return cleanup(inj_os(5, "rename failed"));
    }
    if let Err(e) = fs::rename(&tmp, path) {
        return cleanup(e);
    }

    // Syscall 5: fsync the parent directory.
    if let Some(e) = crash_check(&mut guard, path, &tmp, bytes, old_dst.as_deref(), 5) {
        return Err(e);
    }
    let st = guard.as_mut().expect("armed state");
    st.dirsyncs += 1;
    if take(&mut st.plan.dirsync_fail, st.dirsyncs) {
        // The rename happened; only its durability is unproven. Leave
        // the new destination in place.
        return Err(inj_os(5, "parent-directory fsync failed"));
    }
    sync_parent(path)
}

/// Consults the crash schedule before syscall `step` (1..=5) of a write
/// to `path`. When the global in-scope ordinal matches, applies the
/// adversarial residue for that point — the worst durable state a power
/// cut could leave given which earlier syscalls were fsynced — and
/// either exits the process or (simulate mode) disarms the plan and
/// returns the error the caller must propagate.
fn crash_check(
    guard: &mut MutexGuard<'_, Option<Armed>>,
    path: &Path,
    tmp: &Path,
    bytes: &[u8],
    old_dst: Option<&[u8]>,
    step: u8,
) -> Option<io::Error> {
    let st = guard.as_mut().expect("armed state");
    st.syscalls += 1;
    let (at, mode) = st.plan.crash?;
    if st.syscalls != at {
        return None;
    }
    match step {
        1 => {
            // Nothing of this write started.
        }
        2 => {
            // create() durable, payload never written: empty temp file.
            let _ = fs::write(tmp, b"");
        }
        3 => {
            // Payload written but never fsynced: only a prefix survived.
            let cut = st.plan.rng().next_range(bytes.len().max(1) as u64) as usize;
            let _ = fs::write(tmp, &bytes[..cut.min(bytes.len())]);
        }
        4 => {
            // Fsynced temp file survives whole; destination untouched.
        }
        5 => {
            // The rename's directory entry was never made durable: roll
            // it back. The fsynced temp file survives whole and the old
            // destination (snapshotted before the rename) reappears.
            let _ = fs::write(tmp, bytes);
            match old_dst {
                Some(old) => {
                    let _ = fs::write(path, old);
                }
                None => {
                    let _ = fs::remove_file(path);
                }
            }
        }
        _ => unreachable!("atomic write has five syscalls"),
    }
    match mode {
        CrashMode::Exit(code) => std::process::exit(code),
        CrashMode::Simulate => {
            let n = st.syscalls;
            **guard = None;
            ARMED.store(false, Ordering::SeqCst);
            Some(io::Error::new(
                io::ErrorKind::Other,
                format!("vfs: simulated crash before syscall #{n}"),
            ))
        }
    }
}

/// Retries [`write_atomic`] on *transient* failures (ENOSPC, EIO,
/// interruption, timeouts) with a deterministic bounded exponential
/// backoff: `base, 2*base, 4*base, ...` capped at [`RETRY_MAX_DELAY`],
/// no jitter. Non-transient errors (and simulated crashes) propagate
/// immediately.
pub fn write_atomic_retry(
    path: &Path,
    bytes: &[u8],
    attempts: u32,
    base_delay: Duration,
) -> io::Result<()> {
    let attempts = attempts.max(1);
    let mut delay = base_delay;
    let mut last: Option<io::Error> = None;
    for attempt in 0..attempts {
        match write_atomic(path, bytes) {
            Ok(()) => return Ok(()),
            Err(e) if is_transient(&e) && attempt + 1 < attempts => {
                last = Some(e);
                std::thread::sleep(delay);
                delay = (delay * 2).min(RETRY_MAX_DELAY);
            }
            Err(e) => return Err(e),
        }
    }
    Err(last.expect("loop returned on success or non-transient error"))
}

/// Is this error worth retrying? ENOSPC (a full disk may drain), EIO (a
/// wobbly device may settle), and interruption/timeout kinds.
pub fn is_transient(e: &io::Error) -> bool {
    if matches!(e.raw_os_error(), Some(28) | Some(5)) {
        return true;
    }
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// What a [`scrub_tmp`] pass found and removed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Temp-debris files removed, in sorted name order.
    pub removed: Vec<String>,
}

impl ScrubReport {
    /// Number of debris files removed.
    pub fn count(&self) -> u64 {
        self.removed.len() as u64
    }
}

/// Removes crash-stranded atomic-write debris (`.{name}.{pid}.{seq}.tmp`
/// files) from `dir`, non-recursively, in deterministic (sorted) order.
/// A missing directory scrubs clean. Debris belonging to a *live*
/// concurrent writer in the same directory would also be removed — scrub
/// only at startup, before spawning writers.
pub fn scrub_tmp(dir: &Path) -> io::Result<ScrubReport> {
    let mut report = ScrubReport::default();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(report),
        Err(e) => return Err(e),
    };
    let mut names: Vec<String> = Vec::new();
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with('.') && name.ends_with(".tmp") && entry.path().is_file() {
            names.push(name);
        }
    }
    names.sort_unstable();
    for name in names {
        fs::remove_file(dir.join(&name))?;
        report.removed.push(name);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dqmc_vfs_{}_{}", tag, std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    /// The unique scratch-dir name, used to scope every armed plan:
    /// the plan is process-global, so an unscoped plan would intercept
    /// writes from concurrently running tests.
    fn scope_of(dir: &Path) -> String {
        dir.file_name().expect("scratch has a name").to_string_lossy().into_owned()
    }

    fn tmp_debris(dir: &Path) -> Vec<String> {
        let mut v: Vec<String> = fs::read_dir(dir)
            .expect("read_dir")
            .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with('.') && n.ends_with(".tmp"))
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn unarmed_write_replaces_contents_whole_and_leaves_no_debris() {
        let dir = scratch("plain");
        let path = dir.join("out.bin");
        write_atomic(&path, b"first contents").expect("first write");
        assert_eq!(fs::read(&path).expect("read"), b"first contents");
        write_atomic(&path, b"x").expect("second write");
        assert_eq!(fs::read(&path).expect("read"), b"x");
        assert!(tmp_debris(&dir).is_empty(), "no temp debris");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dsl_parses_every_category_and_rejects_garbage() {
        let plan = FaultPlan::parse(
            "seed=7;scope=.dqrc;create@1;short@2;enospc@3-5;fsync@1;rename@2;dirsync@1;crash@9;mode=sim",
        )
        .expect("full DSL parses");
        assert_eq!(plan.scope.as_deref(), Some(".dqrc"));
        assert_eq!(plan.create_fail, vec![1]);
        assert_eq!(plan.short_writes, vec![2]);
        assert_eq!(plan.enospc, vec![3, 4, 5]);
        assert_eq!(plan.fsync_fail, vec![1]);
        assert_eq!(plan.rename_fail, vec![2]);
        assert_eq!(plan.dirsync_fail, vec![1]);
        assert_eq!(plan.crash, Some((9, CrashMode::Simulate)));

        let exit = FaultPlan::parse("crash@3;code=77").expect("exit-mode DSL");
        assert_eq!(exit.crash, Some((3, CrashMode::Exit(77))));
        let default_exit = FaultPlan::parse("crash@1").expect("default mode");
        assert_eq!(default_exit.crash, Some((1, CrashMode::Exit(CRASH_EXIT_CODE))));

        assert!(FaultPlan::parse("bogus@1").is_err());
        assert!(FaultPlan::parse("enospc@0").is_err());
        assert!(FaultPlan::parse("enospc@5-3").is_err());
        assert!(FaultPlan::parse("mode=maybe").is_err());
        assert!(FaultPlan::parse("crash@1-2").is_err());
        assert!(FaultPlan::parse("short").is_err());
        assert!(FaultPlan::parse("").expect("empty DSL").is_empty());
    }

    #[test]
    fn injected_failures_preserve_the_old_file_and_clean_the_temp() {
        let dir = scratch("inject");
        let path = dir.join("data.dqcp");
        write_atomic(&path, b"old").expect("seed write");

        // One scenario per category, all against the same destination.
        let scope = scope_of(&dir);
        let cases: [(FaultPlan, &str); 5] = [
            (FaultPlan::new().with_scope(&scope).fail_create(1), "create"),
            (FaultPlan::new().with_scope(&scope).enospc(1), "enospc"),
            (FaultPlan::new().with_scope(&scope).short_write(1).with_seed(3), "short"),
            (FaultPlan::new().with_scope(&scope).fail_fsync(1), "fsync"),
            (FaultPlan::new().with_scope(&scope).fail_rename(1), "rename"),
        ];
        for (plan, what) in cases {
            let guard = arm(plan);
            let err = write_atomic(&path, b"new").expect_err(what);
            assert!(is_transient(&err), "{what} injects a transient error: {err}");
            drop(guard);
            assert_eq!(fs::read(&path).expect("read"), b"old", "{what} must not touch dst");
            assert!(tmp_debris(&dir).is_empty(), "{what} leaked temp debris");
        }

        // Dirsync failure is past the rename: new contents win.
        let guard = arm(FaultPlan::new().with_scope(&scope).fail_dirsync(1));
        let err = write_atomic(&path, b"new").expect_err("dirsync");
        assert!(is_transient(&err));
        drop(guard);
        assert_eq!(fs::read(&path).expect("read"), b"new");
        assert!(tmp_debris(&dir).is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn simulated_crash_at_every_point_leaves_old_then_scrub_and_rewrite_recover() {
        let dir = scratch("crash");
        let reference = dir.join("reference.bin");
        write_atomic(&reference, b"new contents, rather longer than old").expect("reference");
        let want = fs::read(&reference).expect("reference bytes");

        for k in 1..=5u64 {
            let path = dir.join(format!("crash{k}.bin"));
            write_atomic(&path, b"old").expect("seed write");
            let guard = arm(
                FaultPlan::new()
                    .with_scope(&scope_of(&dir))
                    .with_seed(k)
                    .crash_at(k, CrashMode::Simulate),
            );
            let err = write_atomic(&path, b"new contents, rather longer than old")
                .expect_err("crash point fires");
            assert!(err.to_string().contains("simulated crash"), "{err}");
            assert!(!armed(), "simulate mode disarms one-shot");
            drop(guard);

            // Old-or-new, never torn: before the dirsync point the old
            // bytes must survive; the residue may include temp debris.
            assert_eq!(fs::read(&path).expect("read"), b"old", "crash@{k} tore the dst");
            let scrubbed = scrub_tmp(&dir).expect("scrub");
            if matches!(k, 2 | 3 | 4 | 5) {
                assert_eq!(scrubbed.count(), 1, "crash@{k} strands one temp file");
            } else {
                assert_eq!(scrubbed.count(), 0, "crash@{k} leaves nothing");
            }
            write_atomic(&path, b"new contents, rather longer than old").expect("recovery write");
            assert_eq!(fs::read(&path).expect("read"), want, "recovery not byte-identical");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn out_of_scope_writes_bypass_the_plan_and_consume_no_ordinals() {
        let dir = scratch("scope");
        let beat = dir.join("shard.beat");
        let entry = dir.join("entry.dqrc");
        let guard = arm(FaultPlan::new().with_scope(".dqrc").enospc(1));
        write_atomic(&beat, b"1").expect("out-of-scope write sails through");
        write_atomic(&beat, b"2").expect("still unaffected");
        let err = write_atomic(&entry, b"payload").expect_err("in-scope first write faults");
        assert_eq!(err.raw_os_error(), Some(28), "ENOSPC reached the right write");
        drop(guard);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_rides_out_a_transient_window_deterministically() {
        let dir = scratch("retry");
        let path = dir.join("report.dqsr");
        let guard = arm(FaultPlan::new().with_scope(&scope_of(&dir)).enospc_window(1, 2));
        write_atomic_retry(&path, b"payload", 4, Duration::from_millis(1))
            .expect("third attempt lands");
        drop(guard);
        assert_eq!(fs::read(&path).expect("read"), b"payload");

        // A window longer than the budget surfaces the last error.
        let guard = arm(FaultPlan::new().with_scope(&scope_of(&dir)).enospc_window(1, 10));
        let err = write_atomic_retry(&path, b"other", 3, Duration::from_millis(1))
            .expect_err("budget exhausted");
        assert_eq!(err.raw_os_error(), Some(28));
        drop(guard);
        assert_eq!(fs::read(&path).expect("read"), b"payload", "failed retry left old bytes");
        assert!(tmp_debris(&dir).is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scrub_removes_only_dot_tmp_debris_in_sorted_order() {
        let dir = scratch("scrub");
        fs::write(dir.join(".b.123.7.tmp"), b"debris").expect("debris");
        fs::write(dir.join(".a.123.4.tmp"), b"debris").expect("debris");
        fs::write(dir.join("keep.dqrc"), b"entry").expect("entry");
        fs::write(dir.join("also.tmp"), b"not ours: no leading dot").expect("other");
        let report = scrub_tmp(&dir).expect("scrub");
        assert_eq!(report.removed, vec![".a.123.4.tmp".to_string(), ".b.123.7.tmp".to_string()]);
        assert!(dir.join("keep.dqrc").exists());
        assert!(dir.join("also.tmp").exists());
        assert_eq!(
            scrub_tmp(&dir.join("missing")).expect("missing dir scrubs clean").count(),
            0
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
