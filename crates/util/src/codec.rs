//! Little-endian binary codec primitives shared by the checkpoint format.
//!
//! The DQMC checkpoint (core::checkpoint) is a length-prefixed, CRC-guarded
//! byte stream; this module provides the writer/reader pair, the error
//! taxonomy, a table-driven CRC-32 (IEEE polynomial) and an FNV-1a 64-bit
//! hash used to fingerprint simulation parameters. Everything here is pure
//! and allocation-light so the codec can be property-tested exhaustively.

use std::fmt;

/// Why a decode failed. Every variant is a clean error: no decode path may
/// panic on malformed bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended before the requested field.
    Truncated {
        /// Bytes requested by the read.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// The leading magic bytes did not match.
    BadMagic,
    /// The format version is not one this build can read.
    BadVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build writes.
        expected: u32,
    },
    /// The payload checksum did not match its header.
    BadChecksum {
        /// CRC recorded in the file.
        stored: u32,
        /// CRC recomputed over the payload.
        computed: u32,
    },
    /// A field decoded to a value that violates its invariant.
    Invalid(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated stream: needed {needed} bytes, {remaining} remain"
                )
            }
            CodecError::BadMagic => write!(f, "bad magic bytes"),
            CodecError::BadVersion { found, expected } => {
                write!(
                    f,
                    "unsupported format version {found} (expected {expected})"
                )
            }
            CodecError::BadChecksum { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            CodecError::Invalid(msg) => write!(f, "invalid field: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only little-endian byte sink.
#[derive(Clone, Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Consumes the writer, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (bit-exact round trip,
    /// including NaN payloads and signed zero).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes raw bytes with no length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Writes a `u64` length prefix followed by each `f64`.
    pub fn put_f64_slice(&mut self, v: &[f64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_f64(x);
        }
    }
}

/// Bounds-checked little-endian byte source over a borrowed slice.
#[derive(Clone, Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over the whole slice.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn chunk(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.chunk(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let c = self.chunk(4)?;
        Ok(u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let c = self.chunk(8)?;
        Ok(u64::from_le_bytes([
            c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7],
        ]))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        Ok(self.get_u64()? as i64)
    }

    /// Reads an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.chunk(n)
    }

    /// Reads a `u64` length prefix and that many `f64`s. The length is
    /// validated against the remaining bytes *before* allocating, so a
    /// corrupt prefix cannot trigger an enormous allocation.
    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>, CodecError> {
        let len = self.get_u64()? as usize;
        if len.checked_mul(8).is_none_or(|b| b > self.remaining()) {
            return Err(CodecError::Truncated {
                needed: len.saturating_mul(8),
                remaining: self.remaining(),
            });
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    // Nibble-driven table: 16 entries, built at compile time.
    const TABLE: [u32; 16] = {
        let mut t = [0u32; 16];
        let mut i = 0;
        while i < 16 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 4 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    };
    let mut crc = !0u32;
    for &b in data {
        crc = TABLE[((crc ^ b as u32) & 0x0F) as usize] ^ (crc >> 4);
        crc = TABLE[((crc ^ (b as u32 >> 4)) & 0x0F) as usize] ^ (crc >> 4);
    }
    !crc
}

/// Incremental FNV-1a 64-bit hasher (parameter fingerprints).
#[derive(Clone, Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xCBF2_9CE4_8422_2325)
    }
}

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a::default()
    }

    /// Folds bytes into the hash.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Folds a `u64` (little-endian) into the hash.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Folds an `f64` bit pattern into the hash.
    pub fn update_f64(&mut self, v: f64) {
        self.update_u64(v.to_bits());
    }

    /// The digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 7);
        w.put_i64(-42);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_f64(std::f64::consts::PI);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 7);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.get_f64().unwrap(), std::f64::consts::PI);
        assert!(r.is_exhausted());
    }

    #[test]
    fn round_trip_f64_slice() {
        let v = [1.0, -2.5, 1e-300, f64::INFINITY];
        let mut w = ByteWriter::new();
        w.put_f64_slice(&v);
        let bytes = w.into_bytes();
        let got = ByteReader::new(&bytes).get_f64_vec().unwrap();
        assert_eq!(got, v);
    }

    #[test]
    fn truncated_reads_error_cleanly() {
        let mut w = ByteWriter::new();
        w.put_u64(3);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(r.get_u64().is_err());
        }
        // A length prefix promising more f64s than remain must not allocate
        // or panic.
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        assert!(matches!(
            ByteReader::new(&bytes).get_f64_vec(),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn crc32_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Single-bit sensitivity.
        assert_ne!(crc32(b"hello"), crc32(b"hellp"));
    }

    #[test]
    fn fnv_distinguishes_field_order() {
        let mut a = Fnv1a::new();
        a.update_u64(1);
        a.update_u64(2);
        let mut b = Fnv1a::new();
        b.update_u64(2);
        b.update_u64(1);
        assert_ne!(a.finish(), b.finish());
        // Known FNV-1a vector: empty input is the offset basis.
        assert_eq!(Fnv1a::new().finish(), 0xCBF2_9CE4_8422_2325);
    }
}
