//! Minimal fixed-width table rendering for the figure/table harness binaries.
//!
//! The bench binaries print the same rows/series the paper's tables and
//! figures report; this module keeps that output aligned and parseable
//! (whitespace-separated, one record per line) so it can be piped into
//! plotting tools.

/// A simple left-header, right-aligned-numbers text table.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header count.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = width[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_line = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                // Left-align first column, right-align the rest.
                if i == 0 {
                    out.push_str(&format!("{:<w$}", c, w = width[i]));
                } else {
                    out.push_str(&format!("{:>w$}", c, w = width[i]));
                }
            }
            out.push('\n');
        };
        fmt_line(&self.headers, &mut out);
        let total: usize = width.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_line(row, &mut out);
        }
        out
    }
}

/// Formats a float with a fixed number of significant decimals.
pub fn fmt_f(x: f64, decimals: usize) -> String {
    format!("{:.*}", decimals, x)
}

/// Formats a float in scientific notation (for the Fig. 2 style output).
pub fn fmt_e(x: f64, decimals: usize) -> String {
    format!("{:.*e}", decimals, x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["N", "time", "gflops"]);
        t.row(vec!["256", "1.25", "55.1"]);
        t.row(vec!["1024", "35.30", "102.7"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // all lines same width
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[0].starts_with("N"));
        assert!(lines[3].contains("102.7"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_mismatched_row() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_e(0.000123, 2), "1.23e-4");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        t.row(vec!["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
