//! Phase profiling and simulated time.
//!
//! [`PhaseTimer`] accumulates wall-clock time per named phase and reports
//! percentage breakdowns — this regenerates Table I of the paper, which
//! attributes simulation time to delayed updates, stratification, clustering,
//! wrapping, and physical measurements.
//!
//! [`SimClock`] is a *simulated* clock used by the GPU device model
//! (`gpusim`): device kernels advance it analytically from a cost model
//! instead of real time, so the GPU experiments are deterministic and run on
//! machines without an accelerator.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Accumulates wall-clock time per named phase.
#[derive(Debug, Default)]
pub struct PhaseTimer {
    acc: HashMap<&'static str, Duration>,
    order: Vec<&'static str>,
}

/// RAII guard returned by [`PhaseTimer::start`]; stops on drop.
pub struct PhaseGuard<'a> {
    timer: &'a mut PhaseTimer,
    phase: &'static str,
    t0: Instant,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        self.timer.add(self.phase, self.t0.elapsed());
    }
}

impl PhaseTimer {
    /// Creates an empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts timing `phase`; time is recorded when the guard drops.
    pub fn start(&mut self, phase: &'static str) -> PhaseGuard<'_> {
        PhaseGuard {
            t0: Instant::now(),
            phase,
            timer: self,
        }
    }

    /// Adds an explicit duration to `phase`.
    pub fn add(&mut self, phase: &'static str, d: Duration) {
        if !self.acc.contains_key(phase) {
            self.order.push(phase);
        }
        *self.acc.entry(phase).or_default() += d;
    }

    /// Times a closure under `phase` and returns its result.
    pub fn time<T>(&mut self, phase: &'static str, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.add(phase, t0.elapsed());
        out
    }

    /// Total accumulated time of `phase`.
    pub fn get(&self, phase: &str) -> Duration {
        self.acc.get(phase).copied().unwrap_or_default()
    }

    /// Sum over all phases.
    pub fn total(&self) -> Duration {
        self.acc.values().sum()
    }

    /// Phases in first-seen order with their accumulated durations.
    pub fn phases(&self) -> Vec<(&'static str, Duration)> {
        self.order.iter().map(|&p| (p, self.acc[p])).collect()
    }

    /// Percentage breakdown (phase, percent-of-total), first-seen order.
    pub fn percentages(&self) -> Vec<(&'static str, f64)> {
        let total = self.total().as_secs_f64();
        self.phases()
            .into_iter()
            .map(|(p, d)| {
                let pct = if total > 0.0 {
                    100.0 * d.as_secs_f64() / total
                } else {
                    0.0
                };
                (p, pct)
            })
            .collect()
    }

    /// Merges another timer's accumulations into this one.
    pub fn merge(&mut self, other: &PhaseTimer) {
        for (p, d) in other.phases() {
            self.add(p, d);
        }
    }

    /// Clears all accumulated time.
    pub fn reset(&mut self) {
        self.acc.clear();
        self.order.clear();
    }
}

/// Deterministic simulated clock, advanced analytically by cost models.
///
/// Time is tracked in seconds as `f64`; the device model in `gpusim` adds
/// kernel/transfer durations computed from bandwidth and throughput figures.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    now: f64,
    meter: Option<Arc<AtomicU64>>,
}

impl SimClock {
    /// Creates a clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Attaches a shared cost meter: every [`SimClock::advance`] also adds
    /// the same duration (in integer nanoseconds) to `meter`. The meter is
    /// cumulative — it survives [`SimClock::reset`] — so an external
    /// watchdog can charge logical cost against a deadline even when it
    /// only holds the `Arc`, not the clock's owner. Deterministic: the
    /// nanosecond conversion is a pure function of the advance amounts.
    pub fn set_meter(&mut self, meter: Arc<AtomicU64>) {
        self.meter = Some(meter);
    }

    /// Advances the clock by `seconds` (must be non-negative and finite).
    pub fn advance(&mut self, seconds: f64) {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "invalid advance: {seconds}"
        );
        self.now += seconds;
        if let Some(m) = &self.meter {
            m.fetch_add((seconds * 1e9) as u64, Ordering::Relaxed);
        }
    }

    /// Resets to t = 0 (an attached meter keeps accumulating).
    pub fn reset(&mut self) {
        self.now = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn phase_accumulation_and_percentages() {
        let mut t = PhaseTimer::new();
        t.add("a", Duration::from_millis(30));
        t.add("b", Duration::from_millis(70));
        t.add("a", Duration::from_millis(30));
        assert_eq!(t.get("a"), Duration::from_millis(60));
        assert_eq!(t.total(), Duration::from_millis(130));
        let pct = t.percentages();
        assert_eq!(pct[0].0, "a");
        assert!((pct[0].1 - 100.0 * 60.0 / 130.0).abs() < 1e-9);
        assert!((pct[1].1 - 100.0 * 70.0 / 130.0).abs() < 1e-9);
    }

    #[test]
    fn guard_records_on_drop() {
        let mut t = PhaseTimer::new();
        {
            let _g = t.start("work");
            std::hint::black_box(0u64);
        }
        assert!(t.get("work") > Duration::ZERO);
    }

    #[test]
    fn time_closure_returns_value() {
        let mut t = PhaseTimer::new();
        let v = t.time("calc", || 41 + 1);
        assert_eq!(v, 42);
        assert!(t.get("calc") > Duration::ZERO || t.get("calc") == Duration::ZERO);
        assert_eq!(t.phases().len(), 1);
    }

    #[test]
    fn merge_adds_durations() {
        let mut a = PhaseTimer::new();
        a.add("x", Duration::from_secs(1));
        let mut b = PhaseTimer::new();
        b.add("x", Duration::from_secs(2));
        b.add("y", Duration::from_secs(3));
        a.merge(&b);
        assert_eq!(a.get("x"), Duration::from_secs(3));
        assert_eq!(a.get("y"), Duration::from_secs(3));
    }

    #[test]
    fn empty_timer_percentages() {
        let t = PhaseTimer::new();
        assert!(t.percentages().is_empty());
        assert_eq!(t.total(), Duration::ZERO);
    }

    #[test]
    fn sim_clock_advances() {
        let mut c = SimClock::new();
        c.advance(1.5);
        c.advance(0.5);
        assert!((c.now() - 2.0).abs() < 1e-15);
        c.reset();
        assert_eq!(c.now(), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid advance")]
    fn sim_clock_rejects_negative() {
        SimClock::new().advance(-1.0);
    }

    #[test]
    fn sim_clock_meter_accumulates_across_resets() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let meter = Arc::new(AtomicU64::new(0));
        let mut c = SimClock::new();
        c.set_meter(Arc::clone(&meter));
        c.advance(1.5);
        c.reset();
        c.advance(0.5);
        assert_eq!(meter.load(Ordering::Relaxed), 2_000_000_000);
        assert!(
            (c.now() - 0.5).abs() < 1e-15,
            "reset still zeroes the clock"
        );
    }
}
