//! Property-based tests of the DQMC engine's invariants.

use dqmc::{greens_from_udt, stratify, BMatrixFactory, HsField, ModelParams, Spin, StratAlgo};
use lattice::Lattice;
use linalg::blas3::{matmul, Op};
use linalg::Matrix;
use proptest::prelude::*;

/// Strategy: a small Hubbard model with a random HS field.
fn dqmc_setup() -> impl Strategy<Value = (ModelParams, u64)> {
    (
        2usize..=3,
        2usize..=3,
        4usize..=12,
        0.0f64..8.0,
        0u64..10_000,
    )
        .prop_map(|(lx, ly, slices, u, seed)| {
            (
                ModelParams::new(Lattice::square(lx, ly, 1.0), u, 0.0, 0.125, slices),
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(25))]

    #[test]
    fn stratified_greens_matches_naive((model, seed) in dqmc_setup()) {
        let fac = BMatrixFactory::new(&model);
        let mut rng = util::Rng::new(seed);
        let h = HsField::random(model.nsites(), model.slices, &mut rng);
        let bs: Vec<Matrix> = (0..model.slices)
            .map(|l| fac.b_matrix(&h, l, Spin::Up))
            .collect();
        let naive = dqmc::greens::greens_naive(&fac, &h, Spin::Up);
        for algo in [StratAlgo::Qrp, StratAlgo::PrePivot] {
            let gf = greens_from_udt(&stratify(&bs, algo));
            let rel = dqmc::greens::relative_difference(&gf.g, &naive.g);
            prop_assert!(rel < 1e-8, "{algo:?}: {rel}");
            prop_assert_eq!(gf.sign, naive.sign);
        }
    }

    #[test]
    fn udt_reproduces_chain_action((model, seed) in dqmc_setup()) {
        let fac = BMatrixFactory::new(&model);
        let mut rng = util::Rng::new(seed);
        let h = HsField::random(model.nsites(), model.slices, &mut rng);
        let bs: Vec<Matrix> = (0..model.slices)
            .map(|l| fac.b_matrix(&h, l, Spin::Down))
            .collect();
        let udt = stratify(&bs, StratAlgo::PrePivot);
        // Apply both representations to a random vector.
        let n = model.nsites();
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64() - 0.5).collect();
        let mut direct = x.clone();
        for b in &bs {
            let mut next = vec![0.0; n];
            linalg::blas2::gemv(1.0, b, &direct, 0.0, &mut next);
            direct = next;
        }
        let via_udt = udt.apply(&x);
        let scale = direct.iter().fold(0.0f64, |m, &v| m.max(v.abs())).max(1e-300);
        for (a, b) in via_udt.iter().zip(direct.iter()) {
            prop_assert!((a - b).abs() / scale < 1e-9);
        }
    }

    #[test]
    fn wrap_round_trip_is_identity((model, seed) in dqmc_setup()) {
        let fac = BMatrixFactory::new(&model);
        let mut rng = util::Rng::new(seed);
        let h = HsField::random(model.nsites(), model.slices, &mut rng);
        let g0 = dqmc::greens::greens_naive(&fac, &h, Spin::Up).g;
        // wrap with B_0 then unwrap: B₀⁻¹ (B₀ G B₀⁻¹) B₀ = G.
        let w = dqmc::greens::wrap(&fac, &h, 0, Spin::Up, &g0);
        let b0 = fac.b_matrix(&h, 0, Spin::Up);
        let binv = linalg::lu::inverse(&b0).unwrap();
        let t = matmul(&binv, Op::NoTrans, &w, Op::NoTrans);
        let back = matmul(&t, Op::NoTrans, &b0, Op::NoTrans);
        prop_assert!(dqmc::greens::relative_difference(&back, &g0) < 1e-7);
    }

    #[test]
    fn delayed_updates_match_naive_sequence(
        n in 3usize..10,
        nb in 1usize..6,
        seed in 0u64..10_000,
        steps in 1usize..12,
    ) {
        let mut rng = util::Rng::new(seed);
        let mut g = Matrix::random(n, n, &mut rng);
        g.scale(0.3);
        for i in 0..n {
            g[(i, i)] += 0.5;
        }
        let mut naive = g.clone();
        let mut delayed = dqmc::update::SliceUpdater::new(g, nb);
        for _ in 0..steps {
            let i = rng.next_range(n as u64) as usize;
            let alpha = rng.next_f64() - 0.3;
            let d_naive = 1.0 + alpha * (1.0 - naive[(i, i)]);
            let d_del = 1.0 + alpha * (1.0 - delayed.gii(i));
            prop_assert!((d_naive - d_del).abs() < 1e-9);
            if d_naive.abs() < 0.05 {
                continue; // skip near-singular updates (unphysical here)
            }
            dqmc::update::rank1_update_naive(&mut naive, i, alpha, d_naive);
            delayed.accept(i, alpha, d_del);
        }
        let got = delayed.into_g();
        prop_assert!(got.max_abs_diff(&naive) < 1e-8);
    }

    #[test]
    fn split_d_identity(d in proptest::collection::vec(-1e6f64..1e6, 1..20)) {
        let d: Vec<f64> = d.into_iter().filter(|x| *x != 0.0).collect();
        prop_assume!(!d.is_empty());
        let (db, ds) = dqmc::greens::split_d(&d);
        for i in 0..d.len() {
            prop_assert!(db[i] > 0.0 && db[i] <= 1.0);
            prop_assert!(ds[i].abs() <= 1.0);
            prop_assert!((ds[i] / db[i] - d[i]).abs() <= 1e-9 * d[i].abs());
        }
    }

    #[test]
    fn metropolis_ratio_fast_vs_determinant((model, seed) in dqmc_setup()) {
        // r = 1 + α(1 − G_ii) against the explicit determinant ratio, for
        // the canonical G and a slice-0 flip.
        let fac = BMatrixFactory::new(&model);
        let mut rng = util::Rng::new(seed);
        let mut h = HsField::random(model.nsites(), model.slices, &mut rng);
        let i = rng.next_range(model.nsites() as u64) as usize;
        let before = dqmc::greens::greens_naive(&fac, &h, Spin::Up);
        let alpha = (-2.0 * model.nu() * h.get(0, i)).exp() - 1.0;
        let fast = 1.0 + alpha * (1.0 - before.g[(i, i)]);
        h.flip(0, i);
        let after = dqmc::greens::greens_naive(&fac, &h, Spin::Up);
        let explicit = after.sign / before.sign * (after.log_det - before.log_det).exp();
        prop_assert!(
            (fast - explicit).abs() < 1e-6 * explicit.abs().max(1.0),
            "fast {fast} vs explicit {explicit}"
        );
    }
}
