//! Time-dependent (unequal-time) measurements.
//!
//! QUEST measures both static and *dynamic* observables; the dynamic ones
//! rest on the unequal-time Green's function
//!
//! ```text
//! G_σ(τ, 0) = ⟨c_σ(τ) c†_σ(0)⟩ = B_σ(τ, 0) · G_σ(0),
//! ```
//!
//! whose naive evaluation suffers exactly the instability the stratification
//! machinery exists to prevent. Here `B(τ,0)·G(0)` is kept in graded
//! `Q·D·T` form: the propagation starts from the UDT of `G(0)` and absorbs
//! one cluster product per step with the same pre-pivoted update the
//! equal-time path uses ([`crate::stratify::StratifyState`]), densifying
//! only the final (exponentially decaying, but elementwise-stable) result.
//!
//! From `G(τ,0)` this module measures:
//! - the local imaginary-time Green's function `G_loc(τ) = Tr G(τ,0)/N`
//!   (the input to analytic continuation for the density of states),
//! - the momentum-resolved `G_k(τ)` at selected momenta (Γ, M, X), whose
//!   τ decay rates read off quasiparticle energies.

use crate::bmat::BMatrixFactory;
use crate::hs::HsField;
use crate::hubbard::Spin;
use crate::stratify::{StratAlgo, StratifyState};
use lattice::{fourier, Lattice};
use linalg::Matrix;
use util::BinnedAccumulator;

/// Unequal-time Green's functions `G(τ_c, 0)` for `τ_c = c·k·Δτ`,
/// `c = 0 ..= L/k` (index 0 is the equal-time `G(0)`).
///
/// `g0` must be the equal-time Green's function for the *canonical* chain
/// position (start of a sweep), and `k` the cluster size used to chunk the
/// propagation.
pub fn unequal_time_greens(
    fac: &BMatrixFactory,
    h: &HsField,
    g0: &Matrix,
    k: usize,
    spin: Spin,
    algo: StratAlgo,
) -> Vec<Matrix> {
    let slices = h.slices();
    assert!(k >= 1 && k <= slices, "cluster size out of range");
    let mut out = Vec::with_capacity(slices / k + 1);
    out.push(g0.clone());
    // Propagate the UDT of B(τ,0)·G(0) cluster by cluster.
    let mut state = StratifyState::new(g0, algo);
    let mut lo = 0;
    while lo < slices {
        let hi = (lo + k).min(slices);
        let cluster = fac.cluster(h, lo, hi, spin);
        state.push(&cluster);
        out.push(state.udt().to_matrix());
        lo = hi;
    }
    out
}

/// Stable unequal-time Green's functions via the Loh–Gubernatis block
/// matrix: `G(τ_c, 0)` for `c = 0 .. L/k` from one LU solve of the
/// `(L_k·N) × (L_k·N)` matrix
///
/// ```text
///      ⎡  I                   B̂_Lk ⎤
///      ⎢ −B̂_1   I                  ⎥
/// O =  ⎢        −B̂_2   I           ⎥ ,   O⁻¹ block (c, 0) = G(τ_c, 0).
///      ⎣                ⋱     I    ⎦
/// ```
///
/// Unlike the forward UDT propagation ([`unequal_time_greens`]), which
/// amplifies the O(ε) error of `G(0)` by `‖B(τ,0)‖`, this never forms long
/// products at all, so it stays accurate at any β — at O((L_k N)³) cost.
/// Returns `L_k + 1` matrices; the last is `G(β,0) = I − G(0)` by
/// anti-periodicity.
pub fn unequal_time_greens_stable(
    fac: &BMatrixFactory,
    h: &HsField,
    k: usize,
    spin: Spin,
) -> Vec<Matrix> {
    let slices = h.slices();
    assert!(k >= 1 && k <= slices, "cluster size out of range");
    let n = fac.nsites();
    // Cluster products B̂_1 … B̂_Lk.
    let mut clusters = Vec::new();
    let mut lo = 0;
    while lo < slices {
        let hi = (lo + k).min(slices);
        clusters.push(fac.cluster(h, lo, hi, spin));
        lo = hi;
    }
    let lk = clusters.len();
    let dim = lk * n;
    let mut big = Matrix::zeros(dim, dim);
    for b in 0..lk {
        for i in 0..n {
            big[(b * n + i, b * n + i)] = 1.0;
        }
    }
    // Sub-diagonal blocks −B̂_{b+1} at (b+1, b); corner +B̂_Lk … for Lk = 1
    // the corner and diagonal coincide: O = I + B̂_1.
    for b in 0..lk {
        let (br, bc, sign, mat) = if b + 1 < lk {
            (b + 1, b, -1.0, &clusters[b])
        } else {
            (0, lk - 1, 1.0, &clusters[lk - 1])
        };
        for j in 0..n {
            for i in 0..n {
                big[(br * n + i, bc * n + j)] += sign * mat[(i, j)];
            }
        }
    }
    let f = linalg::lu::lu_in_place(big).expect("block TDGF matrix singular");
    // Solve against the first block column of the identity.
    let mut rhs = Matrix::zeros(dim, n);
    for i in 0..n {
        rhs[(i, i)] = 1.0;
    }
    f.solve_in_place(&mut rhs);
    linalg::check_finite!(
        rhs.as_slice(),
        "unequal_time_greens_stable solve ({dim}x{n})"
    );
    let mut out: Vec<Matrix> = (0..lk).map(|c| rhs.submatrix(c * n, 0, n, n)).collect();
    // Append G(β,0) = I − G(0).
    let mut last = Matrix::identity(n);
    last.axpy(-1.0, &out[0]);
    out.push(last);
    out
}

/// Accumulated time-dependent observables.
#[derive(Clone, Debug)]
pub struct TimeDependentObs {
    lat: Lattice,
    /// τ value of each grid point.
    taus: Vec<f64>,
    /// Sign-weighted accumulators of `G_loc(τ_c)` (spin-averaged).
    gloc: Vec<BinnedAccumulator>,
    /// Sign-weighted accumulators of `G_k(τ_c)` at (Γ, M, X).
    gk: Vec<[BinnedAccumulator; 3]>,
    sign: BinnedAccumulator,
    count: usize,
}

/// The momenta tracked by [`TimeDependentObs`]: Γ=(0,0), M=(π,π), X=(π,0).
pub const TRACKED_K: [&str; 3] = ["Gamma", "M", "X"];

impl TimeDependentObs {
    /// Creates accumulators for `nclusters + 1` τ points spaced `k·Δτ`.
    pub fn new(lat: &Lattice, k: usize, slices: usize, dtau: f64, bin: usize) -> Self {
        let npts = slices.div_ceil(k) + 1;
        let taus = (0..npts)
            .map(|c| (c * k).min(slices) as f64 * dtau)
            .collect();
        TimeDependentObs {
            lat: lat.clone(),
            taus,
            gloc: vec![BinnedAccumulator::new(bin); npts],
            gk: (0..npts)
                .map(|_| {
                    [
                        BinnedAccumulator::new(bin),
                        BinnedAccumulator::new(bin),
                        BinnedAccumulator::new(bin),
                    ]
                })
                .collect(),
            sign: BinnedAccumulator::new(bin),
            count: 0,
        }
    }

    /// Records one configuration's `G(τ_c,0)` ladders (both spins) with its
    /// fermion sign.
    pub fn record(&mut self, gtau_up: &[Matrix], gtau_dn: &[Matrix], sign: f64) {
        assert_eq!(gtau_up.len(), self.taus.len(), "τ grid mismatch");
        assert_eq!(gtau_dn.len(), self.taus.len(), "τ grid mismatch");
        let n = self.lat.nsites() as f64;
        let (lx, ly) = (self.lat.lx(), self.lat.ly());
        for (c, (gu, gd)) in gtau_up.iter().zip(gtau_dn.iter()).enumerate() {
            let mut tr = 0.0;
            for i in 0..self.lat.nsites() {
                tr += gu[(i, i)] + gd[(i, i)];
            }
            self.gloc[c].push(sign * tr / (2.0 * n));
            // G_k(τ) = (1/N) Σ_{r r'} e^{ik(r−r')} G(τ)[(r, r')]: use the
            // translation average + cosine transform at the three momenta.
            let avg = {
                let mut m = gu.clone();
                m.axpy(1.0, gd);
                m.scale(0.5);
                fourier::translation_average(&self.lat, &m)
            };
            let kpts = [(0usize, 0usize), (lx / 2, ly / 2), (lx / 2, 0)];
            for (ki, &(nx, ny)) in kpts.iter().enumerate() {
                let mut s = 0.0;
                for dy in 0..ly {
                    for dx in 0..lx {
                        let phase = 2.0
                            * std::f64::consts::PI
                            * (nx as f64 * dx as f64 / lx as f64
                                + ny as f64 * dy as f64 / ly as f64);
                        s += phase.cos() * avg[(dx, dy)];
                    }
                }
                self.gk[c][ki].push(sign * s);
            }
        }
        self.sign.push(sign);
        self.count += 1;
    }

    /// The τ grid.
    pub fn taus(&self) -> &[f64] {
        &self.taus
    }

    /// Recorded configuration count.
    pub fn count(&self) -> usize {
        self.count
    }

    /// `G_loc(τ_c)` estimates with errors (sign-normalised).
    pub fn gloc(&self) -> Vec<(f64, f64)> {
        let (s, _) = self.sign.mean_and_err();
        self.gloc
            .iter()
            .map(|a| {
                let (v, e) = a.mean_and_err();
                (v / s, e / s.abs())
            })
            .collect()
    }

    /// `G_k(τ_c)` for tracked momentum index `ki` (0 = Γ, 1 = M, 2 = X).
    pub fn gk(&self, ki: usize) -> Vec<(f64, f64)> {
        let (s, _) = self.sign.mean_and_err();
        self.gk
            .iter()
            .map(|a| {
                let (v, e) = a[ki].mean_and_err();
                (v / s, e / s.abs())
            })
            .collect()
    }

    /// Serializes the τ grid and every accumulator for checkpointing. The
    /// lattice is rebuilt by the caller on decode.
    pub fn encode(&self, w: &mut util::codec::ByteWriter) {
        w.put_f64_slice(&self.taus);
        for a in &self.gloc {
            a.encode(w);
        }
        for trio in &self.gk {
            for a in trio {
                a.encode(w);
            }
        }
        self.sign.encode(w);
        w.put_u64(self.count as u64);
    }

    /// Deserializes accumulators written by [`TimeDependentObs::encode`]
    /// against the given lattice.
    pub fn decode(
        lat: &Lattice,
        r: &mut util::codec::ByteReader<'_>,
    ) -> Result<Self, util::codec::CodecError> {
        let taus = r.get_f64_vec()?;
        if taus.is_empty() {
            return Err(util::codec::CodecError::Invalid("empty τ grid".into()));
        }
        let npts = taus.len();
        let mut gloc = Vec::with_capacity(npts);
        for _ in 0..npts {
            gloc.push(BinnedAccumulator::decode(r)?);
        }
        let mut gk = Vec::with_capacity(npts);
        for _ in 0..npts {
            gk.push([
                BinnedAccumulator::decode(r)?,
                BinnedAccumulator::decode(r)?,
                BinnedAccumulator::decode(r)?,
            ]);
        }
        let sign = BinnedAccumulator::decode(r)?;
        let count = r.get_u64()? as usize;
        Ok(TimeDependentObs {
            lat: lat.clone(),
            taus,
            gloc,
            gk,
            sign,
            count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greens::greens_naive;
    use crate::hubbard::ModelParams;
    use linalg::blas3::{matmul, Op};

    fn setup(u: f64, slices: usize) -> (ModelParams, BMatrixFactory, HsField) {
        let model = ModelParams::new(Lattice::square(3, 3, 1.0), u, 0.0, 0.125, slices);
        let fac = BMatrixFactory::new(&model);
        let mut rng = util::Rng::new(31);
        let h = HsField::random(model.nsites(), slices, &mut rng);
        (model, fac, h)
    }

    #[test]
    fn tau_zero_is_equal_time_g() {
        let (_, fac, h) = setup(4.0, 8);
        let g0 = greens_naive(&fac, &h, Spin::Up);
        let gt = unequal_time_greens(&fac, &h, &g0.g, 4, Spin::Up, StratAlgo::PrePivot);
        assert_eq!(gt.len(), 3); // τ = 0, kΔτ, 2kΔτ = β
        assert!(gt[0].max_abs_diff(&g0.g) < 1e-15);
    }

    #[test]
    fn matches_naive_product_short_chain() {
        // Short, well-conditioned chain: B(τ,0)·G(0) computable directly.
        let (_, fac, h) = setup(4.0, 8);
        let g0 = greens_naive(&fac, &h, Spin::Up);
        let gt = unequal_time_greens(&fac, &h, &g0.g, 4, Spin::Up, StratAlgo::PrePivot);
        for (c, got) in gt.iter().enumerate().skip(1) {
            let b = fac.cluster(&h, 0, 4 * c, Spin::Up);
            let naive = matmul(&b, Op::NoTrans, &g0.g, Op::NoTrans);
            let scale = naive.max_abs().max(1e-300);
            assert!(
                got.max_abs_diff(&naive) / scale < 1e-10,
                "c={c}: {}",
                got.max_abs_diff(&naive) / scale
            );
        }
    }

    #[test]
    fn u_zero_matches_analytic_propagator() {
        // U = 0: G(τ,0) = e^{−τK}(I + e^{−βK})⁻¹ exactly.
        let (model, fac, h) = setup(0.0, 16);
        let g0 = greens_naive(&fac, &h, Spin::Up);
        let gt = unequal_time_greens(&fac, &h, &g0.g, 4, Spin::Up, StratAlgo::PrePivot);
        let kmat = model.lattice.kinetic_matrix(model.mu_tilde);
        for (c, got) in gt.iter().enumerate() {
            let tau = (4 * c) as f64 * model.dtau;
            let prop = linalg::sym_expm(&kmat, -tau).unwrap();
            let expect = matmul(&prop, Op::NoTrans, &g0.g, Op::NoTrans);
            assert!(
                got.max_abs_diff(&expect) < 1e-9,
                "τ={tau}: {}",
                got.max_abs_diff(&expect)
            );
        }
    }

    #[test]
    fn boundary_condition_g_beta_plus_g_zero() {
        // Anti-periodicity: G(β,0) = B(β,0)G(0) = (M−I)G(0)·…: in fact
        // B(β,0)G(0) = I − G(0), since (I + B)G = I.
        let (_, fac, h) = setup(5.0, 16);
        let g0 = greens_naive(&fac, &h, Spin::Down);
        let gt = unequal_time_greens(&fac, &h, &g0.g, 4, Spin::Down, StratAlgo::PrePivot);
        let last = gt.last().unwrap();
        let mut expect = Matrix::identity(9);
        expect.axpy(-1.0, &g0.g);
        assert!(
            last.max_abs_diff(&expect) < 1e-9,
            "{}",
            last.max_abs_diff(&expect)
        );
    }

    #[test]
    fn stable_block_method_matches_naive_short_chain() {
        let (_, fac, h) = setup(4.0, 8);
        let g0 = greens_naive(&fac, &h, Spin::Up);
        let gt = unequal_time_greens_stable(&fac, &h, 4, Spin::Up);
        assert_eq!(gt.len(), 3);
        assert!(gt[0].max_abs_diff(&g0.g) < 1e-10);
        let b = fac.cluster(&h, 0, 4, Spin::Up);
        let naive = matmul(&b, Op::NoTrans, &g0.g, Op::NoTrans);
        assert!(gt[1].max_abs_diff(&naive) < 1e-9);
    }

    #[test]
    fn forward_and_stable_agree_in_moderate_regime() {
        // β = 2, U = 4: the forward propagation's error amplification
        // (~e^{cβ}·ε) is still far below the signal; both paths must agree.
        let (_, fac, h) = setup(4.0, 16);
        let g0 = greens_naive(&fac, &h, Spin::Up);
        let fwd = unequal_time_greens(&fac, &h, &g0.g, 4, Spin::Up, StratAlgo::PrePivot);
        let stable = unequal_time_greens_stable(&fac, &h, 4, Spin::Up);
        assert_eq!(fwd.len(), stable.len());
        for (c, (a, b)) in fwd.iter().zip(stable.iter()).enumerate() {
            let scale = b.max_abs().max(1e-3);
            assert!(
                a.max_abs_diff(b) / scale < 1e-7,
                "c={c}: {}",
                a.max_abs_diff(b) / scale
            );
        }
    }

    #[test]
    fn stable_long_chain_satisfies_boundary_and_bounds() {
        // β = 8, U = 6 (64 slices): the raw product spans ~40 orders of
        // magnitude. The block method must stay finite, respect the
        // anti-periodicity identity by construction, and keep every
        // G(τ,0) bounded (all singular values of the true TDGF are ≤ 1).
        let (_, fac, h) = setup(6.0, 64);
        let gt = unequal_time_greens_stable(&fac, &h, 8, Spin::Up);
        assert_eq!(gt.len(), 9);
        for (c, g) in gt.iter().enumerate() {
            assert!(g.as_slice().iter().all(|x| x.is_finite()));
            // For normal B-chains σ(G(τ,0)) ≤ 1; non-normality allows mild
            // excursions, but nothing like the ~1e20 of the raw product.
            assert!(g.max_abs() < 1e3, "c={c}: ‖G(τ,0)‖ = {}", g.max_abs());
        }
        // Consistency: G(τ_1, 0) = B̂_1 G(0) — here B̂_1 is a single
        // cluster (8 slices), short enough to apply directly.
        let b1 = fac.cluster(&h, 0, 8, Spin::Up);
        let expect = matmul(&b1, Op::NoTrans, &gt[0], Op::NoTrans);
        let scale = expect.max_abs().max(1e-6);
        assert!(
            gt[1].max_abs_diff(&expect) / scale < 1e-6,
            "{}",
            gt[1].max_abs_diff(&expect) / scale
        );
    }

    #[test]
    fn observable_accumulator_shapes() {
        let (model, fac, h) = setup(4.0, 8);
        let g0u = greens_naive(&fac, &h, Spin::Up);
        let g0d = greens_naive(&fac, &h, Spin::Down);
        let gu = unequal_time_greens(&fac, &h, &g0u.g, 4, Spin::Up, StratAlgo::PrePivot);
        let gd = unequal_time_greens(&fac, &h, &g0d.g, 4, Spin::Down, StratAlgo::PrePivot);
        let mut obs = TimeDependentObs::new(&model.lattice, 4, 8, model.dtau, 1);
        obs.record(&gu, &gd, 1.0);
        assert_eq!(obs.count(), 1);
        assert_eq!(obs.taus().len(), 3);
        let gloc = obs.gloc();
        assert_eq!(gloc.len(), 3);
        // τ=0 local G: trace/N of equal-time G, about 0.5 at half filling.
        assert!((gloc[0].0 - 0.5).abs() < 0.3, "{}", gloc[0].0);
        for ki in 0..3 {
            assert_eq!(obs.gk(ki).len(), 3);
        }
    }
}
