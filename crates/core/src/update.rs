//! Metropolis rank-1 Green's-function updates, with delay blocking.
//!
//! After an accepted flip at site `i` the Green's function changes by a
//! rank-1 matrix (§II-B):
//!
//! ```text
//! G ← G − (α/d) u wᵀ,   u = (I − G)e_i,  w = Gᵀe_i,  d = 1 + α(1 − G_ii)
//! ```
//!
//! Applying each update immediately is a level-2 `ger` (memory bound). QUEST
//! instead *delays* them [Jarrell, ref 27 of the paper]: accumulate the
//! scaled `u`/`w` pairs in `N×nb` panels and reconstruct the handful of
//! entries each Metropolis step actually needs (one diagonal element, then
//! one row and one column) from `G₀ + U·Wᵀ` at O(N·j) cost. Every `nb`
//! accepted updates the panels are flushed into `G₀` with a single GEMM.

use linalg::blas3::{gemm, Op};
use linalg::{workspace, Matrix};

/// Delayed-update accumulator around one spin's Green's function at a fixed
/// time slice.
///
/// The `U`/`W` panels and the row/col reconstruction scratch are leased from
/// the [`linalg::workspace`] arena on construction and returned by
/// [`SliceUpdater::into_g`], so the per-slice updater churn of a sweep
/// performs no steady-state heap allocation.
#[derive(Clone, Debug)]
pub struct SliceUpdater {
    g: Matrix,
    /// Scaled update columns: `U[:, m] = (α/d)_m u_m`.
    u: Matrix,
    /// Update rows: `W[:, m] = w_m`.
    w: Matrix,
    /// Scratch for the reconstructed row `G[i, :]`.
    scratch_row: Vec<f64>,
    /// Scratch for the reconstructed column `G[:, i]`.
    scratch_col: Vec<f64>,
    /// Number of pending (unflushed) updates.
    pending: usize,
    nb: usize,
}

/// Reconstructs row `G[i,:]` and column `G[:,i]` through the pending
/// updates into the provided scratch buffers:
/// `col = G₀[:,i] + U · W[i,:]ᵀ`, `row = G₀[i,:] + U[i,:] · Wᵀ` — both
/// O(N·pending). A free function over disjoint field borrows so
/// [`SliceUpdater::accept`] can reconstruct while it owns `u`/`w` mutably.
fn reconstruct_row_col(
    g: &Matrix,
    u: &Matrix,
    w: &Matrix,
    pending: usize,
    i: usize,
    row: &mut [f64],
    col: &mut [f64],
) {
    let n = g.nrows();
    for r in 0..n {
        col[r] = g[(r, i)];
    }
    for c in 0..n {
        row[c] = g[(i, c)];
    }
    for m in 0..pending {
        let wim = w[(i, m)];
        if wim != 0.0 {
            let ucol = u.col(m);
            for r in 0..n {
                col[r] += ucol[r] * wim;
            }
        }
        let uim = u[(i, m)];
        if uim != 0.0 {
            let wcol = w.col(m);
            for c in 0..n {
                row[c] += uim * wcol[c];
            }
        }
    }
}

impl SliceUpdater {
    /// Wraps a Green's function with delay block size `nb ≥ 1`.
    pub fn new(g: Matrix, nb: usize) -> Self {
        assert!(g.is_square(), "Green's function must be square");
        assert!(nb >= 1);
        let n = g.nrows();
        SliceUpdater {
            g,
            u: workspace::take_matrix(n, nb),
            w: workspace::take_matrix(n, nb),
            scratch_row: workspace::take(n),
            scratch_col: workspace::take(n),
            pending: 0,
            nb,
        }
    }

    /// Matrix order `N`.
    pub fn n(&self) -> usize {
        self.g.nrows()
    }

    /// Current `G_ii`, reconstructed through the pending updates:
    /// `G_ii = G₀_ii + Σ_m U_im W_im`.
    pub fn gii(&self, i: usize) -> f64 {
        let mut v = self.g[(i, i)];
        for m in 0..self.pending {
            v += self.u[(i, m)] * self.w[(i, m)];
        }
        v
    }

    /// Current row `G[i, :]` and column `G[:, i]` through pending updates.
    ///
    /// The slices borrow the updater's internal scratch (refilled on every
    /// call and invalidated by the next `&mut self` method) — no allocation
    /// per Metropolis proposal.
    pub fn row_col(&mut self, i: usize) -> (&[f64], &[f64]) {
        let SliceUpdater {
            g,
            u,
            w,
            scratch_row,
            scratch_col,
            pending,
            ..
        } = self;
        reconstruct_row_col(g, u, w, *pending, i, scratch_row, scratch_col);
        (&self.scratch_row, &self.scratch_col)
    }

    /// Records an accepted flip at site `i` with HS coefficient `alpha` and
    /// acceptance denominator `d = 1 + α(1 − G_ii)`.
    ///
    /// Flushes automatically when the delay block fills.
    pub fn accept(&mut self, i: usize, alpha: f64, d: f64) {
        let n = self.n();
        let scalef = alpha / d;
        let m = self.pending;
        {
            let SliceUpdater {
                g,
                u,
                w,
                scratch_row,
                scratch_col,
                ..
            } = self;
            reconstruct_row_col(g, u, w, m, i, scratch_row, scratch_col);
            // G ← G − (α/d)(e_i − G[:,i])·G(i,:), stored as G += U·Wᵀ with
            // U[:,m] = (α/d)(G[:,i] − e_i).
            let ucol = u.col_mut(m);
            for r in 0..n {
                ucol[r] = scalef * (scratch_col[r] - if r == i { 1.0 } else { 0.0 });
            }
            w.col_mut(m).copy_from_slice(scratch_row);
        }
        self.pending += 1;
        if self.pending == self.nb {
            self.flush();
        }
    }

    /// Flushes pending updates into `G₀` with one GEMM: `G₀ += U Wᵀ`.
    pub fn flush(&mut self) {
        if self.pending == 0 {
            return;
        }
        let n = self.n();
        let mut up = workspace::take_matrix(n, self.pending);
        self.u.copy_submatrix_into(0, 0, &mut up);
        let mut wp = workspace::take_matrix(n, self.pending);
        self.w.copy_submatrix_into(0, 0, &mut wp);
        gemm(1.0, &up, Op::NoTrans, &wp, Op::Trans, 1.0, &mut self.g);
        workspace::put_matrix(up);
        workspace::put_matrix(wp);
        self.pending = 0;
    }

    /// Flushes, returns the fully updated Green's function, and gives the
    /// U/W panels and scratch buffers back to the workspace arena.
    pub fn into_g(mut self) -> Matrix {
        self.flush();
        let SliceUpdater {
            g,
            u,
            w,
            scratch_row,
            scratch_col,
            ..
        } = self;
        workspace::put_matrix(u);
        workspace::put_matrix(w);
        workspace::put(scratch_row);
        workspace::put(scratch_col);
        g
    }

    /// Read access to the *flushed* base matrix (test hook; call
    /// [`SliceUpdater::flush`] first for the true current G).
    pub fn base(&self) -> &Matrix {
        &self.g
    }

    /// Number of pending updates (test hook).
    pub fn pending(&self) -> usize {
        self.pending
    }
}

/// Immediate (non-delayed) reference implementation:
/// `G ← G − (α/d)·(e_i − G[:,i])·G(i,:)`.
///
/// This is the Sherman–Morrison inverse of the rank-1 change
/// `M' = M + α (M − I) e_i e_iᵀ` produced by flipping `h_{l,i}` when `B_l`
/// is the *rightmost* factor of the chain — the paper's update order
/// (update slice `l` against the canonical G, then wrap).
pub fn rank1_update_naive(g: &mut Matrix, i: usize, alpha: f64, d: f64) {
    let n = g.nrows();
    let col: Vec<f64> = (0..n).map(|r| g[(r, i)]).collect();
    let row: Vec<f64> = (0..n).map(|c| g[(i, c)]).collect();
    let s = alpha / d;
    for c in 0..n {
        let rc = s * row[c];
        if rc != 0.0 {
            for r in 0..n {
                let u = if r == i { 1.0 } else { 0.0 } - col[r];
                g[(r, c)] -= u * rc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use util::Rng;

    fn random_g(n: usize, seed: u64) -> Matrix {
        let mut rng = Rng::new(seed);
        // Plausible Green's function scale: entries O(1), diagonal near 0.5.
        let mut g = Matrix::random(n, n, &mut rng);
        g.scale(0.3);
        for i in 0..n {
            g[(i, i)] += 0.5;
        }
        g
    }

    #[test]
    fn single_update_matches_naive() {
        let g0 = random_g(8, 1);
        let mut naive = g0.clone();
        rank1_update_naive(&mut naive, 3, 0.7, 1.0 + 0.7 * (1.0 - g0[(3, 3)]));

        let mut del = SliceUpdater::new(g0.clone(), 4);
        let d = 1.0 + 0.7 * (1.0 - del.gii(3));
        del.accept(3, 0.7, d);
        let got = del.into_g();
        assert!(got.max_abs_diff(&naive) < 1e-13);
    }

    #[test]
    fn sequence_matches_naive_across_flush_boundary() {
        let g0 = random_g(10, 2);
        let sites = [0usize, 7, 3, 3, 9, 1, 4, 2, 8];
        let alphas = [0.5, -0.3, 1.2, 0.1, -0.8, 0.9, 0.2, -0.1, 0.7];

        let mut naive = g0.clone();
        for (&i, &a) in sites.iter().zip(alphas.iter()) {
            let d = 1.0 + a * (1.0 - naive[(i, i)]);
            rank1_update_naive(&mut naive, i, a, d);
        }

        // nb = 4 forces two flushes plus a partial block.
        let mut del = SliceUpdater::new(g0, 4);
        for (&i, &a) in sites.iter().zip(alphas.iter()) {
            let d = 1.0 + a * (1.0 - del.gii(i));
            del.accept(i, a, d);
        }
        let got = del.into_g();
        assert!(
            got.max_abs_diff(&naive) < 1e-11,
            "{}",
            got.max_abs_diff(&naive)
        );
    }

    #[test]
    fn gii_sees_pending_updates() {
        let g0 = random_g(6, 3);
        let mut del = SliceUpdater::new(g0.clone(), 16); // never auto-flush
        let before = del.gii(2);
        let d = 1.0 + 0.9 * (1.0 - before);
        del.accept(2, 0.9, d);
        let after_pending = del.gii(2);
        assert!(del.pending() == 1);
        // Compare with naive update applied eagerly.
        let mut naive = g0;
        rank1_update_naive(&mut naive, 2, 0.9, d);
        assert!((after_pending - naive[(2, 2)]).abs() < 1e-13);
    }

    #[test]
    fn row_col_sees_pending_updates() {
        let g0 = random_g(7, 4);
        let mut del = SliceUpdater::new(g0.clone(), 16);
        let d = 1.0 + 0.4 * (1.0 - del.gii(5));
        del.accept(5, 0.4, d);
        let (row, col) = del.row_col(1);
        let mut naive = g0;
        rank1_update_naive(&mut naive, 5, 0.4, d);
        for c in 0..7 {
            assert!((row[c] - naive[(1, c)]).abs() < 1e-13);
        }
        for r in 0..7 {
            assert!((col[r] - naive[(r, 1)]).abs() < 1e-13);
        }
    }

    #[test]
    fn explicit_flush_idempotent() {
        let g0 = random_g(5, 5);
        let mut del = SliceUpdater::new(g0.clone(), 8);
        del.flush(); // nothing pending
        assert!(del.base().max_abs_diff(&g0) < 1e-15);
        let d = 1.0 + 0.3 * (1.0 - del.gii(0));
        del.accept(0, 0.3, d);
        del.flush();
        del.flush();
        assert_eq!(del.pending(), 0);
    }

    #[test]
    fn nb_one_flushes_every_update() {
        let g0 = random_g(6, 6);
        let mut del = SliceUpdater::new(g0.clone(), 1);
        let d = 1.0 + 0.5 * (1.0 - del.gii(4));
        del.accept(4, 0.5, d);
        assert_eq!(del.pending(), 0, "nb=1 must flush immediately");
        let mut naive = g0;
        rank1_update_naive(&mut naive, 4, 0.5, d);
        assert!(del.base().max_abs_diff(&naive) < 1e-13);
    }

    #[test]
    fn update_preserves_inverse_identity() {
        // If G = M⁻¹ and we flip via the HS formula, the updated G must equal
        // the inverse of the rank-1-updated M: M' = M + Δ, where flipping
        // site i multiplies row i of B by (1+α): M' differs by α·outer.
        // Verify G' · M' ≈ I on a synthetic M.
        let n = 6;
        let mut rng = Rng::new(7);
        let mut m = Matrix::random(n, n, &mut rng);
        for i in 0..n {
            m[(i, i)] += 3.0;
        }
        let g = linalg::lu::inverse(&m).unwrap();
        let i = 2;
        let alpha = 0.6;
        // DQMC identity: M' = M + α (M − I) e_i e_iᵀ ⇒ written via columns.
        let mut mprime = m.clone();
        for r in 0..n {
            let delta = alpha * (m[(r, i)] - if r == i { 1.0 } else { 0.0 });
            mprime[(r, i)] += delta;
        }
        let d = 1.0 + alpha * (1.0 - g[(i, i)]);
        let mut del = SliceUpdater::new(g, 4);
        del.accept(i, alpha, d);
        let gp = del.into_g();
        let prod = linalg::blas3::matmul(&gp, Op::NoTrans, &mprime, Op::NoTrans);
        assert!(
            prod.max_abs_diff(&Matrix::identity(n)) < 1e-10,
            "{}",
            prod.max_abs_diff(&Matrix::identity(n))
        );
    }
}
