//! Phase attribution matching the paper's Table I.
//!
//! The paper splits simulation time into five buckets: delayed rank-1
//! updates, stratification, clustering, wrapping, and physical measurements.
//! [`phases`] fixes the canonical names so every component and the Table I
//! harness agree on the attribution.

use std::time::Duration;
use util::PhaseTimer;

/// Canonical phase names (Table I rows).
pub mod phases {
    /// Metropolis proposals + delayed rank-1 Green's function updates.
    pub const DELAYED_UPDATE: &str = "delayed-update";
    /// Stratified Q·D·T recomputation of G.
    pub const STRATIFICATION: &str = "stratification";
    /// Building cluster products `B̂`.
    pub const CLUSTERING: &str = "clustering";
    /// Wrapping `G ← B G B⁻¹`.
    pub const WRAPPING: &str = "wrapping";
    /// Equal-time physical measurements.
    pub const MEASUREMENT: &str = "measurement";

    /// All phases, in Table I row order.
    pub const ALL: [&str; 5] = [
        DELAYED_UPDATE,
        STRATIFICATION,
        CLUSTERING,
        WRAPPING,
        MEASUREMENT,
    ];
}

/// A Table I style report: per-phase seconds and percentage of total.
#[derive(Clone, Debug)]
pub struct PhaseReport {
    /// `(phase, seconds, percent)` rows in Table I order, then any extras.
    pub rows: Vec<(String, f64, f64)>,
    /// Total seconds across all phases.
    pub total: f64,
}

/// Builds a report from a timer, listing the canonical phases first.
pub fn report(timer: &PhaseTimer) -> PhaseReport {
    let total: f64 = timer.total().as_secs_f64();
    let pct = |d: Duration| {
        if total > 0.0 {
            100.0 * d.as_secs_f64() / total
        } else {
            0.0
        }
    };
    let mut rows = Vec::new();
    for &p in &phases::ALL {
        let d = timer.get(p);
        rows.push((p.to_string(), d.as_secs_f64(), pct(d)));
    }
    for (p, d) in timer.phases() {
        if !phases::ALL.contains(&p) {
            rows.push((p.to_string(), d.as_secs_f64(), pct(d)));
        }
    }
    PhaseReport { rows, total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn report_orders_canonical_phases() {
        let mut t = PhaseTimer::new();
        t.add(phases::WRAPPING, Duration::from_millis(250));
        t.add(phases::DELAYED_UPDATE, Duration::from_millis(750));
        let r = report(&t);
        assert_eq!(r.rows[0].0, phases::DELAYED_UPDATE);
        assert!((r.rows[0].2 - 75.0).abs() < 1e-9);
        assert_eq!(r.rows[3].0, phases::WRAPPING);
        assert!((r.rows[3].2 - 25.0).abs() < 1e-9);
        assert!((r.total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn extra_phases_appended() {
        let mut t = PhaseTimer::new();
        t.add("setup", Duration::from_millis(10));
        let r = report(&t);
        assert_eq!(r.rows.len(), 6);
        assert_eq!(r.rows[5].0, "setup");
    }

    #[test]
    fn empty_timer_zero_percentages() {
        let r = report(&PhaseTimer::new());
        assert_eq!(r.total, 0.0);
        assert!(r.rows.iter().all(|(_, s, p)| *s == 0.0 && *p == 0.0));
    }
}
