//! Conditioning diagnostics for B-matrix chains.
//!
//! The paper's central motivation: "when L or U is large (that is, low
//! temperatures or strong interactions), the product matrix `B_L⋯B_1` is
//! extremely ill-conditioned". This module quantifies that statement for
//! any simulation setup, using the machinery the engine already has: the
//! graded diagonal `D` of the incremental `Q·D·T` decomposition estimates
//! the product's singular values at every chain length — without ever
//! forming the product — and, for small systems, the estimate is verified
//! against the high-relative-accuracy Jacobi SVD.

use crate::bmat::BMatrixFactory;
use crate::hs::HsField;
use crate::hubbard::Spin;
use crate::stratify::{StratAlgo, StratifyState};

/// Dynamic-range profile of a chain: one entry per cluster boundary.
#[derive(Clone, Debug)]
pub struct ConditionProfile {
    /// Imaginary time τ at each boundary.
    pub taus: Vec<f64>,
    /// `log10(σ_max)` estimated from `D`.
    pub log_sigma_max: Vec<f64>,
    /// `log10(σ_min)` estimated from `D`.
    pub log_sigma_min: Vec<f64>,
}

impl ConditionProfile {
    /// `log10` condition-number estimates per boundary.
    pub fn log_condition(&self) -> Vec<f64> {
        self.log_sigma_max
            .iter()
            .zip(self.log_sigma_min.iter())
            .map(|(a, b)| a - b)
            .collect()
    }

    /// Growth rate of `log10 κ` per unit τ, fitted through the last point.
    pub fn growth_rate(&self) -> f64 {
        let lc = self.log_condition();
        match (self.taus.last(), lc.last()) {
            (Some(&t), Some(&c)) if t > 0.0 => c / t,
            _ => 0.0,
        }
    }
}

/// Cumulative count of pivoted-QR norm-downdate safeguard recomputations
/// (LAPACK working note 176 criterion) across all QRP calls in the process.
///
/// A burst here means the partial column norms lost too much accuracy to
/// certify the pivot order — the numerical smoke that precedes a grading
/// failure. Sample before/after a sweep and report the delta.
pub fn qrp_norm_recomputes() -> u64 {
    linalg::check::norm_downdate_recomputes()
}

/// Profiles the conditioning of `B(τ,0)` for one spin species along the
/// chain, clustered by `k`.
pub fn condition_profile(
    fac: &BMatrixFactory,
    h: &HsField,
    dtau: f64,
    k: usize,
    spin: Spin,
    algo: StratAlgo,
) -> ConditionProfile {
    let slices = h.slices();
    assert!(k >= 1 && k <= slices);
    let mut taus = Vec::new();
    let mut lmax = Vec::new();
    let mut lmin = Vec::new();

    let mut state: Option<StratifyState> = None;
    let mut lo = 0;
    while lo < slices {
        let hi = (lo + k).min(slices);
        let cluster = fac.cluster(h, lo, hi, spin);
        match state.as_mut() {
            None => state = Some(StratifyState::new(&cluster, algo)),
            Some(s) => s.push(&cluster),
        }
        let d = &state.as_ref().expect("just set").udt().d;
        let amax = d.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        let amin = d.iter().fold(f64::INFINITY, |m, &x| m.min(x.abs()));
        taus.push(hi as f64 * dtau);
        lmax.push(amax.log10());
        lmin.push(amin.log10());
        lo = hi;
    }
    ConditionProfile {
        taus,
        log_sigma_max: lmax,
        log_sigma_min: lmin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hubbard::ModelParams;
    use lattice::Lattice;

    fn setup(u: f64, slices: usize) -> (ModelParams, BMatrixFactory, HsField) {
        let model = ModelParams::new(Lattice::square(3, 3, 1.0), u, 0.0, 0.125, slices);
        let fac = BMatrixFactory::new(&model);
        let mut rng = util::Rng::new(8);
        let h = HsField::random(9, slices, &mut rng);
        (model, fac, h)
    }

    #[test]
    fn free_fermion_growth_matches_bandwidth() {
        // U = 0: B(τ,0) = e^{−τK}, σ range = e^{τ(ε_max−ε_min)}. For the
        // 3×3 periodic lattice ε ∈ [−4, 2]… compute from the spectrum.
        let (model, fac, h) = setup(0.0, 32);
        let prof = condition_profile(&fac, &h, model.dtau, 4, Spin::Up, StratAlgo::PrePivot);
        let k = model.lattice.kinetic_matrix(0.0);
        let e = linalg::eig::sym_eig(&k).unwrap();
        let spread = e.values.last().unwrap() - e.values[0];
        let expected_rate = spread / std::f64::consts::LN_10;
        let rate = prof.growth_rate();
        assert!(
            (rate - expected_rate).abs() < 0.15 * expected_rate,
            "rate {rate} vs bandwidth {expected_rate}"
        );
    }

    #[test]
    fn interactions_worsen_conditioning() {
        let (model, fac0, h) = setup(0.0, 32);
        let prof0 = condition_profile(&fac0, &h, model.dtau, 4, Spin::Up, StratAlgo::PrePivot);
        let (model8, fac8, h8) = setup(8.0, 32);
        let prof8 = condition_profile(&fac8, &h8, model8.dtau, 4, Spin::Up, StratAlgo::PrePivot);
        assert!(
            prof8.growth_rate() > prof0.growth_rate() * 1.2,
            "U=8 rate {} should exceed U=0 rate {}",
            prof8.growth_rate(),
            prof0.growth_rate()
        );
    }

    #[test]
    fn condition_grows_monotonically_along_chain() {
        let (model, fac, h) = setup(6.0, 40);
        let prof = condition_profile(&fac, &h, model.dtau, 8, Spin::Down, StratAlgo::Qrp);
        let lc = prof.log_condition();
        for w in lc.windows(2) {
            assert!(w[1] > w[0] - 0.5, "κ should grow along the chain");
        }
        // β = 5, U = 6: tens of orders of magnitude (the paper's point).
        assert!(
            *lc.last().unwrap() > 8.0,
            "expected severe ill-conditioning, got 1e{}",
            lc.last().unwrap()
        );
    }

    #[test]
    fn d_estimates_match_jacobi_svd_short_chain() {
        // For a short, representable chain compare the D-based σ estimates
        // against the Jacobi SVD of the explicit product.
        let (_, fac, h) = setup(4.0, 8);
        let mut state: Option<StratifyState> = None;
        for lo in (0..8).step_by(4) {
            let c = fac.cluster(&h, lo, lo + 4, Spin::Up);
            match state.as_mut() {
                None => state = Some(StratifyState::new(&c, StratAlgo::Qrp)),
                Some(s) => s.push(&c),
            }
        }
        let udt = state.unwrap().into_udt();
        let mut d_est: Vec<f64> = udt.d.iter().map(|x| x.abs()).collect();
        d_est.sort_by(|a, b| b.partial_cmp(a).unwrap());

        let product = fac.full_chain(&h, Spin::Up);
        let sv = linalg::svd(&product).unwrap();
        for (est, exact) in d_est.iter().zip(sv.s.iter()) {
            // QRP diagonals estimate σ within a modest polynomial factor.
            let ratio = est / exact;
            assert!(
                (0.05..20.0).contains(&ratio),
                "σ estimate {est} vs exact {exact}"
            );
        }
        // Extremes are tighter.
        assert!((d_est[0] / sv.s[0] - 1.0).abs() < 0.5);
    }
}
