//! Green's function assembly and wrapping.
//!
//! From the graded decomposition `B_L⋯B_1 = Q·diag(D)·T` the equal-time
//! Green's function `G = (I + B_L⋯B_1)⁻¹` is assembled without ever forming
//! the ill-conditioned product: with the paper's splitting of `D` into the
//! big part `D_b` and small part `D_s`,
//!
//! ```text
//! I + Q D T = Q D_b⁻¹ (D_b Qᵀ + D_s T)   ⇒   G = (D_b Qᵀ + D_s T)⁻¹ D_b Qᵀ
//! ```
//!
//! — every factor on the right is O(1), so a plain LU solve is accurate.
//! The same factorization yields the sign and log-magnitude of
//! `det(I + B_L⋯B_1)` for free, which supplies the Metropolis determinant
//! ratio checks and the fermion sign.
//!
//! Wrapping (§III-B1) advances `G` one slice: `G ← B_l G B_l⁻¹`, two GEMMs
//! plus diagonal scalings.

use crate::bmat::BMatrixFactory;
use crate::hs::HsField;
use crate::hubbard::Spin;
use crate::stratify::Udt;
#[cfg(test)]
use linalg::blas3::{gemm, Op};
use linalg::{lu, scale, Matrix};

/// An equal-time Green's function with its determinant bookkeeping.
#[derive(Clone, Debug)]
pub struct GreensFunction {
    /// The matrix `G = (I + B_L⋯B_1)⁻¹`.
    pub g: Matrix,
    /// Sign of `det(I + B_L⋯B_1)`.
    pub sign: f64,
    /// `ln |det(I + B_L⋯B_1)|`.
    pub log_det: f64,
}

/// The paper's `D_b`/`D_s` splitting of the graded diagonal.
pub fn split_d(d: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let db = d
        .iter()
        .map(|&x| if x.abs() > 1.0 { 1.0 / x.abs() } else { 1.0 })
        .collect();
    let ds = d
        .iter()
        .map(|&x| if x.abs() <= 1.0 { x } else { x.signum() })
        .collect();
    (db, ds)
}

/// Assembles `G`, the determinant sign, and `ln|det|` from a UDT.
pub fn greens_from_udt(udt: &Udt) -> GreensFunction {
    let n = udt.q.nrows();
    let (db, ds) = split_d(&udt.d);

    // M̃ = D_b Qᵀ + D_s T (all entries O(1)).
    let mut qt = udt.q.transpose();
    scale::row_scale(&db, &mut qt);
    let mut m = udt.t.clone();
    scale::row_scale(&ds, &mut m);
    m.axpy(1.0, &qt);

    let f = lu::lu_in_place(m).expect("Green's function assembly: singular M̃");
    let mut g = qt; // right-hand side D_b Qᵀ
    f.solve_in_place(&mut g);

    // det(I + QDT) = det(Q) · det(D_b⁻¹) · det(M̃); D_b > 0.
    let (mut sign, mut log_det) = f.sign_log_det();
    sign *= udt.q_sign;
    for &b in &db {
        log_det -= b.ln();
    }
    let _ = n;
    linalg::check_finite!(g.as_slice(), "greens_from_udt output ({n}x{n})");
    GreensFunction { g, sign, log_det }
}

/// Wraps the Green's function from slice `l−1` to slice `l`:
/// `G ← B_l G B_l⁻¹` (the new slice's B becomes the leftmost factor).
pub fn wrap(fac: &BMatrixFactory, h: &HsField, l: usize, spin: Spin, g: &Matrix) -> Matrix {
    let mut out = linalg::workspace::take_matrix(g.nrows(), g.ncols());
    fac.wrap_into(h, l, spin, g, &mut out);
    out
}

/// Relative difference `‖G₁ − G₂‖_F / ‖G₂‖_F` — the paper's Figure 2 metric
/// and the wrapping accuracy monitor.
pub fn relative_difference(g1: &Matrix, g2: &Matrix) -> f64 {
    assert_eq!(g1.nrows(), g2.nrows());
    assert_eq!(g1.ncols(), g2.ncols());
    let mut diff = g1.clone();
    diff.axpy(-1.0, g2);
    diff.norm_fro() / g2.norm_fro()
}

/// Brute-force `G = (I + B_L⋯B_1)⁻¹` by explicit product and inversion.
/// Only valid for short, well-conditioned chains; used to validate the
/// stratified assembly in tests.
pub fn greens_naive(fac: &BMatrixFactory, h: &HsField, spin: Spin) -> GreensFunction {
    let n = fac.nsites();
    let chain = fac.full_chain(h, spin);
    let mut m = Matrix::identity(n);
    m.axpy(1.0, &chain);
    let f = lu::lu_in_place(m.clone()).expect("naive Green's function: singular");
    let (sign, log_det) = f.sign_log_det();
    GreensFunction {
        g: f.inverse(),
        sign,
        log_det,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hubbard::ModelParams;
    use crate::stratify::{stratify, StratAlgo};
    use lattice::Lattice;

    fn setup(l: usize, u: f64) -> (ModelParams, BMatrixFactory, HsField) {
        let model = ModelParams::new(Lattice::square(3, 3, 1.0), u, 0.1, 0.125, l);
        let fac = BMatrixFactory::new(&model);
        let mut rng = util::Rng::new(21);
        let h = HsField::random(model.nsites(), l, &mut rng);
        (model, fac, h)
    }

    fn clusters(fac: &BMatrixFactory, h: &HsField, k: usize) -> Vec<Matrix> {
        (0..h.slices())
            .step_by(k)
            .map(|lo| fac.cluster(h, lo, (lo + k).min(h.slices()), crate::Spin::Up))
            .collect()
    }

    #[test]
    fn split_d_definition() {
        let d = [5.0, -3.0, 1.0, 0.5, -0.2];
        let (db, ds) = split_d(&d);
        assert_eq!(db, vec![0.2, 1.0 / 3.0, 1.0, 1.0, 1.0]);
        assert_eq!(ds, vec![1.0, -1.0, 1.0, 0.5, -0.2]);
        // D = Ds / Db elementwise.
        for i in 0..5 {
            assert!((ds[i] / db[i] - d[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn stratified_matches_naive_short_chain() {
        let (_, fac, h) = setup(8, 4.0);
        for algo in [StratAlgo::Qrp, StratAlgo::PrePivot] {
            let bs: Vec<Matrix> = (0..8)
                .map(|l| fac.b_matrix(&h, l, crate::Spin::Up))
                .collect();
            let udt = stratify(&bs, algo);
            let gf = greens_from_udt(&udt);
            let gn = greens_naive(&fac, &h, crate::Spin::Up);
            assert!(
                relative_difference(&gf.g, &gn.g) < 1e-10,
                "{algo:?}: {}",
                relative_difference(&gf.g, &gn.g)
            );
            assert_eq!(gf.sign, gn.sign, "{algo:?} determinant sign");
            assert!(
                (gf.log_det - gn.log_det).abs() < 1e-8,
                "{algo:?} log det: {} vs {}",
                gf.log_det,
                gn.log_det
            );
        }
    }

    #[test]
    fn clustered_matches_unclustered() {
        let (_, fac, h) = setup(8, 4.0);
        let bs: Vec<Matrix> = (0..8)
            .map(|l| fac.b_matrix(&h, l, crate::Spin::Up))
            .collect();
        let g1 = greens_from_udt(&stratify(&bs, StratAlgo::PrePivot));
        let cl = clusters(&fac, &h, 4);
        let g2 = greens_from_udt(&stratify(&cl, StratAlgo::PrePivot));
        assert!(relative_difference(&g1.g, &g2.g) < 1e-10);
    }

    #[test]
    fn algorithms_agree_at_green_function_level() {
        // The Figure 2 property: ‖G − G̃‖_F/‖G‖_F tiny across U values.
        for &u in &[2.0, 4.0, 8.0] {
            let (_, fac, h) = setup(16, u);
            let cl = clusters(&fac, &h, 4);
            let g_qrp = greens_from_udt(&stratify(&cl, StratAlgo::Qrp));
            let g_pre = greens_from_udt(&stratify(&cl, StratAlgo::PrePivot));
            let rel = relative_difference(&g_pre.g, &g_qrp.g);
            assert!(rel < 1e-9, "U={u}: {rel}");
        }
    }

    #[test]
    fn wrap_matches_recompute() {
        let (_, fac, h) = setup(8, 4.0);
        // G at "slice -1" (canonical order), then wrap to slice 0.
        let g0 = greens_naive(&fac, &h, crate::Spin::Up).g;
        let wrapped = wrap(&fac, &h, 0, crate::Spin::Up, &g0);
        // Recompute with rotated order: B_0 B_7 ⋯ B_1.
        let order: Vec<Matrix> = (1..8)
            .chain(0..1)
            .map(|l| fac.b_matrix(&h, l, crate::Spin::Up))
            .collect();
        let udt = stratify(&order, StratAlgo::PrePivot);
        let gr = greens_from_udt(&udt);
        assert!(
            relative_difference(&wrapped, &gr.g) < 1e-9,
            "{}",
            relative_difference(&wrapped, &gr.g)
        );
    }

    #[test]
    fn long_chain_stable_where_naive_fails() {
        // β = 8·U=6 chain on 3×3: the explicit product's condition number is
        // astronomical; the stratified G must stay finite and be an actual
        // inverse: ‖(I + B…B)G − I‖ small is unverifiable directly (the
        // product overflows), so check instead the projector identity
        // G + B G B⁻¹(I−…)… — simplest robust check: G entries finite and
        // the identity G = B_0⁻¹ (wrap) round-trips.
        let model = ModelParams::new(Lattice::square(3, 3, 1.0), 6.0, 0.0, 0.125, 64);
        let fac = BMatrixFactory::new(&model);
        let mut rng = util::Rng::new(5);
        let h = HsField::random(9, 64, &mut rng);
        let cl: Vec<Matrix> = (0..64)
            .step_by(8)
            .map(|lo| fac.cluster(&h, lo, lo + 8, crate::Spin::Up))
            .collect();
        let gf = greens_from_udt(&stratify(&cl, StratAlgo::PrePivot));
        assert!(gf.g.as_slice().iter().all(|x| x.is_finite()));
        // Wrap forward one slice and back: must return to the same matrix.
        let fwd = wrap(&fac, &h, 0, crate::Spin::Up, &gf.g);
        let bg = fac.b_inv_mul_right(&h, 0, crate::Spin::Up, &fwd);
        let mut back = Matrix::zeros(9, 9);
        // back = B_0⁻¹ (B_0 G B_0⁻¹) B_0 = G: left-multiply by B⁻¹ =
        // right-multiply implemented via b_mul_left on the transpose is
        // awkward; do it directly: B_0⁻¹ fwd B_0.
        let b0 = fac.b_matrix(&h, 0, crate::Spin::Up);
        let binv = linalg::lu::inverse(&b0).unwrap();
        let tmp = linalg::blas3::matmul(&binv, Op::NoTrans, &fwd, Op::NoTrans);
        gemm(1.0, &tmp, Op::NoTrans, &b0, Op::NoTrans, 0.0, &mut back);
        assert!(relative_difference(&back, &gf.g) < 1e-8);
        let _ = bg;
    }

    #[test]
    fn determinant_ratio_under_single_flip() {
        // r = det M(h')/det M(h) from log-dets must match the fast formula
        // 1 + α(1 − G_ii).
        // Updating slice 0 uses the canonical G (B_0 rightmost), per the
        // paper's update-then-wrap order.
        let (model, fac, h0) = setup(8, 4.0);
        let mut h = h0.clone();
        let gf = {
            let order: Vec<Matrix> = (0..8)
                .map(|l| fac.b_matrix(&h, l, crate::Spin::Up))
                .collect();
            greens_from_udt(&stratify(&order, StratAlgo::PrePivot))
        };
        let i = 4;
        let nu = model.nu();
        let alpha = (-2.0 * nu * h.get(0, i)).exp() - 1.0;
        let fast_ratio = 1.0 + alpha * (1.0 - gf.g[(i, i)]);

        // Explicit: flip and recompute det of M with the same order.
        let before = gf;
        h.flip(0, i);
        let after = {
            let order: Vec<Matrix> = (0..8)
                .map(|l| fac.b_matrix(&h, l, crate::Spin::Up))
                .collect();
            greens_from_udt(&stratify(&order, StratAlgo::PrePivot))
        };
        let explicit_ratio = after.sign / before.sign * (after.log_det - before.log_det).exp();
        assert!(
            (fast_ratio - explicit_ratio).abs() < 1e-7 * explicit_ratio.abs().max(1.0),
            "fast {fast_ratio} vs explicit {explicit_ratio}"
        );
    }

    #[test]
    fn relative_difference_metric() {
        let a = Matrix::identity(3);
        let mut b = a.clone();
        b[(0, 0)] = 1.0 + 3e-3;
        let r = relative_difference(&b, &a);
        assert!((r - 3e-3 / 3f64.sqrt()).abs() < 1e-12);
        assert_eq!(relative_difference(&a, &a), 0.0);
    }
}
