//! Model and simulation parameters.
//!
//! Conventions (matching §II of the paper):
//!
//! - `H = H_T + H_V + H_μ` with hopping `t`, repulsion `U > 0`, chemical
//!   potential `μ`;
//! - the chemical potential enters the hopping matrix diagonal as
//!   `K_rr = −μ̃` with `μ̃ = μ − U/2` the particle–hole symmetric shift, so
//!   `μ̃ = 0` gives half filling (ρ = 1) for any `U` — the density studied
//!   in the paper's Figures 5–7;
//! - `β = L·Δτ`, `ν = arccosh(e^{UΔτ/2})`,
//!   `B_{l,σ} = e^{−ΔτK} e^{σν·diag(h_l)}` (see `bmat` for why the potential
//!   factor sits on the right).

use lattice::Lattice;

/// Electron spin species, σ ∈ {+, −}.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Spin {
    /// Spin up (σ = +1).
    Up,
    /// Spin down (σ = −1).
    Down,
}

impl Spin {
    /// Both species, in `[Up, Down]` order.
    pub const BOTH: [Spin; 2] = [Spin::Up, Spin::Down];

    /// The sign σ = ±1.
    #[inline]
    pub fn sign(self) -> f64 {
        match self {
            Spin::Up => 1.0,
            Spin::Down => -1.0,
        }
    }

    /// Index 0 (up) or 1 (down) for array storage.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Spin::Up => 0,
            Spin::Down => 1,
        }
    }
}

/// Physical parameters of one Hubbard-model DQMC run.
#[derive(Clone, Debug)]
pub struct ModelParams {
    /// Lattice geometry.
    pub lattice: Lattice,
    /// On-site repulsion `U ≥ 0`.
    pub u: f64,
    /// Shifted chemical potential `μ̃ = μ − U/2` (0 ⇒ half filling).
    pub mu_tilde: f64,
    /// Imaginary-time step `Δτ`.
    pub dtau: f64,
    /// Number of time slices `L` (so `β = L·Δτ`).
    pub slices: usize,
}

impl ModelParams {
    /// Creates and validates a parameter set.
    pub fn new(lattice: Lattice, u: f64, mu_tilde: f64, dtau: f64, slices: usize) -> Self {
        assert!(u >= 0.0, "repulsive Hubbard model requires U ≥ 0");
        assert!(dtau > 0.0, "Δτ must be positive");
        assert!(slices >= 1, "need at least one time slice");
        ModelParams {
            lattice,
            u,
            mu_tilde,
            dtau,
            slices,
        }
    }

    /// Number of lattice sites `N`.
    pub fn nsites(&self) -> usize {
        self.lattice.nsites()
    }

    /// Inverse temperature `β = L·Δτ`.
    pub fn beta(&self) -> f64 {
        self.slices as f64 * self.dtau
    }

    /// Hubbard–Stratonovich coupling `ν = arccosh(e^{UΔτ/2})`.
    pub fn nu(&self) -> f64 {
        let x = (self.u * self.dtau / 2.0).exp();
        // acosh(x) for x ≥ 1; x = 1 exactly when U = 0.
        (x + (x * x - 1.0).max(0.0).sqrt()).ln()
    }

    /// True when the parameters are sign-problem-free (half filling).
    pub fn is_half_filled(&self) -> bool {
        self.mu_tilde == 0.0
    }
}

/// Which stratification variant evaluates the Green's function.
pub use crate::stratify::StratAlgo;

/// Acceptance rule for proposed HS flips (QUEST supports both).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Acceptance {
    /// Accept with probability `min(1, |r|)`.
    Metropolis,
    /// Accept with probability `|r| / (1 + |r|)` (detailed balance with a
    /// smoother acceptance profile; useful at strong coupling).
    HeatBath,
}

impl Acceptance {
    /// Acceptance probability for ratio magnitude `r ≥ 0`.
    #[inline]
    pub fn probability(self, r: f64) -> f64 {
        match self {
            Acceptance::Metropolis => r.min(1.0),
            Acceptance::HeatBath => r / (1.0 + r),
        }
    }
}

/// Full simulation configuration (model + algorithmic knobs).
#[derive(Clone, Debug)]
pub struct SimParams {
    /// Physics.
    pub model: ModelParams,
    /// Warmup (thermalisation) sweeps.
    pub warmup_sweeps: usize,
    /// Measurement sweeps.
    pub measure_sweeps: usize,
    /// Matrix cluster size `k` (§III-A2; paper default 10).
    pub cluster_size: usize,
    /// Delayed-update block size (QUEST uses ~32).
    pub delay_block: usize,
    /// RNG seed; a run is a pure function of `(params, seed)`.
    pub seed: u64,
    /// Green's-function algorithm (Algorithm 2 or 3).
    pub algo: StratAlgo,
    /// Reuse unchanged matrix clusters across evaluations (§III-B2).
    pub recycle: bool,
    /// Measurement bin size (sweeps per bin) for error analysis.
    pub bin_size: usize,
    /// Also measure time-dependent observables (unequal-time Green's
    /// functions at cluster-spaced τ) during measurement sweeps. This is
    /// QUEST's "dynamic" measurement mode; it adds O(N³L/k) work per sweep.
    pub measure_unequal_time: bool,
    /// Use the checkerboard (split-bond) kinetic operator instead of the
    /// exact dense exponential (QUEST's large-lattice mode; same O(Δτ²)
    /// accuracy class).
    pub checkerboard: bool,
    /// Measure equal-time observables at every cluster boundary rather than
    /// once per sweep. Equal-time expectation values are τ-translation
    /// invariant, so the extra samples are valid; they are correlated, which
    /// the binned error analysis absorbs. QUEST measures this way.
    pub measure_per_cluster: bool,
    /// Flip acceptance rule.
    pub acceptance: Acceptance,
    /// Fault-recovery policy (retry / cluster-shrink / host-fallback); see
    /// [`crate::recovery`]. Enabled by default — the policy never consumes
    /// the Metropolis RNG stream, so a fault-free run is bit-identical
    /// whatever the policy says.
    pub recovery: crate::recovery::RecoveryPolicy,
}

impl SimParams {
    /// Defaults matching the paper: k = 10, delayed block 32, pre-pivoted
    /// stratification, recycling on.
    pub fn new(model: ModelParams) -> Self {
        let cluster = 10.min(model.slices).max(1);
        SimParams {
            model,
            warmup_sweeps: 100,
            measure_sweeps: 200,
            cluster_size: cluster,
            delay_block: 32,
            seed: 0,
            algo: StratAlgo::PrePivot,
            recycle: true,
            bin_size: 10,
            measure_unequal_time: false,
            checkerboard: false,
            measure_per_cluster: false,
            acceptance: Acceptance::Metropolis,
            recovery: crate::recovery::RecoveryPolicy::default(),
        }
    }

    /// Sets warmup and measurement sweep counts.
    pub fn with_sweeps(mut self, warmup: usize, measure: usize) -> Self {
        self.warmup_sweeps = warmup;
        self.measure_sweeps = measure;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the stratification algorithm.
    pub fn with_algo(mut self, algo: StratAlgo) -> Self {
        self.algo = algo;
        self
    }

    /// Sets the cluster size `k` (clipped to `L`; `L % k == 0` recommended).
    pub fn with_cluster_size(mut self, k: usize) -> Self {
        assert!(k >= 1);
        self.cluster_size = k.min(self.model.slices);
        self
    }

    /// Sets the delayed-update block size (1 = plain rank-1 updates).
    pub fn with_delay_block(mut self, nb: usize) -> Self {
        assert!(nb >= 1);
        self.delay_block = nb;
        self
    }

    /// Enables or disables cluster recycling.
    pub fn with_recycle(mut self, on: bool) -> Self {
        self.recycle = on;
        self
    }

    /// Sets the measurement bin size.
    pub fn with_bin_size(mut self, b: usize) -> Self {
        assert!(b >= 1);
        self.bin_size = b;
        self
    }

    /// Enables time-dependent (unequal-time) measurements.
    pub fn with_unequal_time(mut self, on: bool) -> Self {
        self.measure_unequal_time = on;
        self
    }

    /// Selects the checkerboard kinetic operator.
    pub fn with_checkerboard(mut self, on: bool) -> Self {
        self.checkerboard = on;
        self
    }

    /// Enables measuring at every cluster boundary within a sweep.
    pub fn with_measure_per_cluster(mut self, on: bool) -> Self {
        self.measure_per_cluster = on;
        self
    }

    /// Selects the flip acceptance rule.
    pub fn with_acceptance(mut self, a: Acceptance) -> Self {
        self.acceptance = a;
        self
    }

    /// Sets the fault-recovery policy.
    pub fn with_recovery(mut self, policy: crate::recovery::RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    /// Number of clusters `L_k = ⌈L / k⌉`.
    pub fn nclusters(&self) -> usize {
        self.model.slices.div_ceil(self.cluster_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ModelParams {
        ModelParams::new(Lattice::square(4, 4, 1.0), 4.0, 0.0, 0.125, 16)
    }

    #[test]
    fn beta_is_l_dtau() {
        let m = model();
        assert!((m.beta() - 2.0).abs() < 1e-15);
        assert_eq!(m.nsites(), 16);
    }

    #[test]
    fn nu_matches_cosh_identity() {
        let m = model();
        let nu = m.nu();
        // cosh(ν) = e^{UΔτ/2}
        assert!((nu.cosh() - (m.u * m.dtau / 2.0).exp()).abs() < 1e-12);
    }

    #[test]
    fn nu_zero_at_u_zero() {
        let m = ModelParams::new(Lattice::square(2, 2, 1.0), 0.0, 0.0, 0.1, 4);
        assert_eq!(m.nu(), 0.0);
    }

    #[test]
    fn spin_signs_and_indices() {
        assert_eq!(Spin::Up.sign(), 1.0);
        assert_eq!(Spin::Down.sign(), -1.0);
        assert_eq!(Spin::Up.index(), 0);
        assert_eq!(Spin::Down.index(), 1);
    }

    #[test]
    fn sim_params_builders() {
        let p = SimParams::new(model())
            .with_sweeps(5, 10)
            .with_seed(42)
            .with_cluster_size(8)
            .with_delay_block(16)
            .with_recycle(false)
            .with_bin_size(2);
        assert_eq!(p.warmup_sweeps, 5);
        assert_eq!(p.measure_sweeps, 10);
        assert_eq!(p.seed, 42);
        assert_eq!(p.cluster_size, 8);
        assert_eq!(p.nclusters(), 2);
        assert!(!p.recycle);
    }

    #[test]
    fn cluster_size_clipped_to_slices() {
        let m = ModelParams::new(Lattice::square(2, 2, 1.0), 1.0, 0.0, 0.1, 4);
        let p = SimParams::new(m).with_cluster_size(100);
        assert_eq!(p.cluster_size, 4);
        assert_eq!(p.nclusters(), 1);
    }

    #[test]
    fn acceptance_probabilities() {
        assert_eq!(Acceptance::Metropolis.probability(2.0), 1.0);
        assert_eq!(Acceptance::Metropolis.probability(0.25), 0.25);
        assert!((Acceptance::HeatBath.probability(1.0) - 0.5).abs() < 1e-15);
        assert!((Acceptance::HeatBath.probability(3.0) - 0.75).abs() < 1e-15);
        assert_eq!(Acceptance::HeatBath.probability(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "U ≥ 0")]
    fn negative_u_rejected() {
        let _ = ModelParams::new(Lattice::square(2, 2, 1.0), -1.0, 0.0, 0.1, 4);
    }
}
