//! Graded-decomposition stratification — Algorithms 2 and 3 of the paper.
//!
//! The long product `B_L⋯B_1` is maintained as `Q·diag(D)·T` with `Q`
//! orthogonal, `D` the graded magnitudes (descending), and `T` well
//! conditioned. Algorithm 2 grades every step with a *pivoted* QR; the
//! paper's contribution, Algorithm 3, observes that after the first step the
//! iterates are already nearly column-graded, so a cheap **pre-pivot**
//! (sorting columns by norm) followed by an *unpivoted* QR preserves the
//! grading at GEMM-class speed. Both are implemented here over the same
//! [`Udt`] representation so they can be compared element by element
//! (Figure 2) and swapped freely in the simulation.

use linalg::blas3::{gemm, Op};
use linalg::{qr, qrp, scale, tri, Matrix, Permutation};

/// Which stratification variant to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StratAlgo {
    /// Algorithm 2: pivoted QR (DGEQP3) at every step.
    Qrp,
    /// Algorithm 3: column-norm pre-pivot + unpivoted QR (DGEQRF).
    PrePivot,
}

/// Graded decomposition `Q · diag(D) · T` of a matrix product.
#[derive(Clone, Debug)]
pub struct Udt {
    /// Orthogonal factor.
    pub q: Matrix,
    /// Graded diagonal (descending magnitude).
    pub d: Vec<f64>,
    /// Well-conditioned right factor.
    pub t: Matrix,
    /// Sign of `det Q` accumulated from the final QR (for fermion signs).
    pub q_sign: f64,
    /// Total column interchanges performed by the pivoting/pre-pivoting —
    /// the quantity the paper observes to be small under grading.
    pub interchanges: usize,
}

impl Udt {
    /// Dense reconstruction `Q·diag(D)·T` (tests; overflows for long chains).
    pub fn to_matrix(&self) -> Matrix {
        let mut qd = self.q.clone();
        scale::col_scale(&self.d, &mut qd);
        let mut out = Matrix::zeros(qd.nrows(), self.t.ncols());
        gemm(1.0, &qd, Op::NoTrans, &self.t, Op::NoTrans, 0.0, &mut out);
        out
    }

    /// Applies the represented product to a vector: `Q D T x` — stable for
    /// moderate chain lengths, used by property tests.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        let n = self.t.nrows();
        let mut tx = vec![0.0; n];
        linalg::blas2::gemv(1.0, &self.t, x, 0.0, &mut tx);
        for (v, d) in tx.iter_mut().zip(self.d.iter()) {
            *v *= d;
        }
        let mut out = vec![0.0; self.q.nrows()];
        linalg::blas2::gemv(1.0, &self.q, &tx, 0.0, &mut out);
        out
    }
}

/// Incremental stratification: maintains the graded `Q·D·T` of a growing
/// left-product `B_m ⋯ B_1` one factor at a time.
///
/// This is the engine behind [`stratify`] and the unequal-time Green's
/// function propagation ([`crate::tdm`]), which needs the intermediate
/// decomposition after every cluster.
#[derive(Clone, Debug)]
pub struct StratifyState {
    algo: StratAlgo,
    udt: Udt,
    /// Number of cluster boundaries absorbed so far (0 after `new`); names
    /// the failing boundary in checked-invariants panic messages.
    boundary: usize,
}

impl StratifyState {
    /// Starts the decomposition from the first (rightmost) factor — the
    /// pivoted QR of step 1, shared by both algorithms.
    pub fn new(first: &Matrix, algo: StratAlgo) -> Self {
        assert!(first.is_square(), "stratify: factors must be square");
        // Checked before the QRP so a poisoned input is reported against the
        // boundary, not as a pivot-norm failure deep inside the factorization.
        linalg::check_finite!(first.as_slice(), "stratify factor at cluster boundary 0");
        let f0 = qrp::qrp_in_place(first.clone());
        let p0 = f0.permutation();
        let interchanges = p0.displacement();
        let d = f0.r_diag();
        // T₁ = D₁⁻¹ R₁ P₁ᵀ
        let t = {
            let mut r = f0.r();
            scale::row_scale_inv(&d, &mut r);
            p0.permute_cols_inv(&r)
        };
        let q_sign = f0.q_det_sign();
        linalg::check_graded!(&d, 1.0 + 1e-7, "stratified D at cluster boundary 0");
        StratifyState {
            algo,
            udt: Udt {
                q: f0.form_q(),
                d,
                t,
                q_sign,
                interchanges,
            },
            boundary: 0,
        }
    }

    /// Multiplies a new leftmost factor into the decomposition (step 3).
    pub fn push(&mut self, b: &Matrix) {
        let n = self.udt.q.nrows();
        assert!(b.nrows() == n && b.ncols() == n, "stratify: factor shape");
        self.boundary += 1;
        // Must fire before the GEMM/QR below: those would surface the taint
        // as an unrelated pivot-norm or orthogonality failure.
        linalg::check_finite!(
            b.as_slice(),
            "stratify factor at cluster boundary {}",
            self.boundary
        );
        // Step 3a: C = (Bᵢ Q_{i−1}) D_{i−1} — GEMM then a column scaling,
        // ordered exactly as the paper prescribes for accuracy. The staging
        // matrix comes from the workspace arena; whichever branch consumes
        // it hands ownership into the factorization payload instead.
        let mut c = linalg::workspace::take_matrix(n, n);
        gemm(1.0, b, Op::NoTrans, &self.udt.q, Op::NoTrans, 0.0, &mut c);
        scale::col_scale(&self.udt.d, &mut c);

        // Step 3b: grade C.
        let (qi, ri, pi, sign) = match self.algo {
            StratAlgo::Qrp => {
                let f = qrp::qrp_in_place(c);
                let p = f.permutation();
                let sign = f.q_det_sign();
                (f.form_q(), f.r(), p, sign)
            }
            StratAlgo::PrePivot => {
                // Pre-pivot: descending column norms, then plain QR.
                let norms = scale::col_norms(&c);
                let p = Permutation::sort_descending(&norms);
                let cp = p.permute_cols(&c);
                linalg::workspace::put_matrix(c);
                let f = qr::qr_in_place(cp);
                let sign = f.q_det_sign();
                (f.form_q(), f.r(), p, sign)
            }
        };
        self.udt.interchanges += pi.displacement();

        // Step 3c: Dᵢ = diag(Rᵢ); Tᵢ = (Dᵢ⁻¹ Rᵢ)(Pᵢᵀ T_{i−1}).
        // Refill the graded diagonal in place — its capacity persists across
        // every boundary of the chain.
        self.udt.d.clear();
        self.udt.d.extend((0..n).map(|i| ri[(i, i)]));
        // QRP grades strictly; the pre-pivot variant only preserves the
        // essential graded structure (§IV-A), hence the wide slack.
        linalg::check_graded!(
            &self.udt.d,
            match self.algo {
                StratAlgo::Qrp => 1.0 + 1e-7,
                StratAlgo::PrePivot => 1e3,
            },
            "stratified D at cluster boundary {}",
            self.boundary
        );
        let mut dinv_r = ri;
        scale::row_scale_inv(&self.udt.d, &mut dinv_r);
        let mut pt = pi.permute_rows_t(&self.udt.t);
        tri::trmm_upper(&dinv_r, &mut pt);
        self.udt.t = pt;
        self.udt.q = qi;
        self.udt.q_sign = sign;
    }

    /// The current decomposition.
    pub fn udt(&self) -> &Udt {
        &self.udt
    }

    /// Consumes the state, returning the decomposition.
    pub fn into_udt(self) -> Udt {
        self.udt
    }
}

/// Runs the stratified decomposition of `B_m ⋯ B_2 B_1` where
/// `factors[0] = B_1` is applied first (rightmost in the product).
///
/// Matrices may be the raw per-slice B's or pre-clustered products
/// (§III-A2); the algorithm is identical.
pub fn stratify(factors: &[Matrix], algo: StratAlgo) -> Udt {
    assert!(!factors.is_empty(), "stratify: empty factor list");
    let mut state = StratifyState::new(&factors[0], algo);
    for b in &factors[1..] {
        state.push(b);
    }
    state.into_udt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use util::Rng;

    fn random_chain(n: usize, len: usize, scale_spread: f64, seed: u64) -> Vec<Matrix> {
        let mut rng = Rng::new(seed);
        (0..len)
            .map(|_| {
                let mut m = Matrix::random(n, n, &mut rng);
                // push the chain towards gradedness, like e^{±ν} factors do
                for i in 0..n {
                    let s = (scale_spread * (rng.next_f64() - 0.5)).exp();
                    linalg::blas1::scal(s, m.col_mut(i));
                }
                // keep it comfortably nonsingular
                for i in 0..n {
                    m[(i, i)] += 2.0;
                }
                m
            })
            .collect()
    }

    fn explicit_product(factors: &[Matrix]) -> Matrix {
        let n = factors[0].nrows();
        let mut acc = Matrix::identity(n);
        for f in factors {
            let mut next = Matrix::zeros(n, n);
            gemm(1.0, f, Op::NoTrans, &acc, Op::NoTrans, 0.0, &mut next);
            acc = next;
        }
        acc
    }

    #[test]
    fn single_factor_reconstruction_both_algorithms() {
        let chain = random_chain(10, 1, 1.0, 1);
        for algo in [StratAlgo::Qrp, StratAlgo::PrePivot] {
            let udt = stratify(&chain, algo);
            let rec = udt.to_matrix();
            assert!(
                rec.max_abs_diff(&chain[0]) < 1e-11,
                "{algo:?}: {}",
                rec.max_abs_diff(&chain[0])
            );
        }
    }

    #[test]
    fn short_chain_matches_explicit_product() {
        let chain = random_chain(8, 4, 1.0, 2);
        let exact = explicit_product(&chain);
        for algo in [StratAlgo::Qrp, StratAlgo::PrePivot] {
            let udt = stratify(&chain, algo);
            let rec = udt.to_matrix();
            let rel = rec.max_abs_diff(&exact) / exact.max_abs();
            assert!(rel < 1e-11, "{algo:?}: rel {rel}");
        }
    }

    #[test]
    fn d_is_graded_descending() {
        let chain = random_chain(12, 6, 3.0, 3);
        // QRP grades strictly; pre-pivoting preserves the *essential* graded
        // structure "although not as strong" (§IV-A) — allow slack there.
        let udt = stratify(&chain, StratAlgo::Qrp);
        for w in udt.d.windows(2) {
            assert!(
                w[0].abs() >= w[1].abs() * (1.0 - 1e-8),
                "Qrp: D not graded: {} then {}",
                w[0],
                w[1]
            );
        }
        let udt = stratify(&chain, StratAlgo::PrePivot);
        for w in udt.d.windows(2) {
            assert!(
                10.0 * w[0].abs() >= w[1].abs(),
                "PrePivot: grading badly violated: {} then {}",
                w[0],
                w[1]
            );
        }
        // The global dynamic range must still be captured by D's ends.
        assert!(udt.d[0].abs() > udt.d[11].abs());
    }

    #[test]
    fn q_is_orthogonal_t_is_well_conditioned() {
        let chain = random_chain(10, 8, 2.0, 4);
        let udt = stratify(&chain, StratAlgo::PrePivot);
        let qtq = linalg::blas3::matmul(&udt.q, Op::Trans, &udt.q, Op::NoTrans);
        assert!(qtq.max_abs_diff(&Matrix::identity(10)) < 1e-12);
        // T's rows are D⁻¹R-scaled: entries bounded by ~1 per construction.
        assert!(
            udt.t.max_abs() < 1e3,
            "T should stay O(1): {}",
            udt.t.max_abs()
        );
    }

    #[test]
    fn algorithms_agree_on_action() {
        // The two algorithms produce different Q/D/T but the same product;
        // compare their action on vectors (the Figure 2 comparison is done
        // at the Green's-function level in greens.rs).
        let chain = random_chain(9, 6, 2.0, 5);
        let u1 = stratify(&chain, StratAlgo::Qrp);
        let u2 = stratify(&chain, StratAlgo::PrePivot);
        let mut rng = Rng::new(6);
        for _ in 0..4 {
            let x: Vec<f64> = (0..9).map(|_| rng.next_f64() - 0.5).collect();
            let y1 = u1.apply(&x);
            let y2 = u2.apply(&x);
            let scale = y1.iter().fold(0.0f64, |m, &v| m.max(v.abs())).max(1.0);
            for (a, b) in y1.iter().zip(y2.iter()) {
                assert!((a - b).abs() / scale < 1e-10, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn handles_extreme_grading_without_overflow() {
        // Chain whose explicit product spans ~1e±120: the UDT keeps Q and T
        // tame while D absorbs the dynamic range.
        let mut chain = random_chain(6, 20, 0.5, 7);
        for (i, m) in chain.iter_mut().enumerate() {
            m.scale(if i % 2 == 0 { 1e6 } else { 1e-3 });
        }
        let udt = stratify(&chain, StratAlgo::PrePivot);
        assert!(udt.q.as_slice().iter().all(|x| x.is_finite()));
        assert!(udt.t.as_slice().iter().all(|x| x.is_finite()));
        assert!(udt.d.iter().all(|x| x.is_finite()));
        assert!(udt.d[0].abs() > udt.d[5].abs());
    }

    #[test]
    fn prepivot_interchanges_fewer_on_graded_chains() {
        // As the chain grows, later steps of Algorithm 3 should need almost
        // no reordering relative to a fresh unsorted matrix: compare the
        // displacement against the worst case n per step.
        let chain = random_chain(16, 10, 1.0, 8);
        let udt = stratify(&chain, StratAlgo::PrePivot);
        let worst = 16 * 10;
        assert!(
            udt.interchanges < worst,
            "expected progressive grading to limit interchanges"
        );
    }

    #[test]
    fn q_sign_is_plus_minus_one() {
        let chain = random_chain(7, 3, 1.0, 9);
        for algo in [StratAlgo::Qrp, StratAlgo::PrePivot] {
            let udt = stratify(&chain, algo);
            assert!(udt.q_sign == 1.0 || udt.q_sign == -1.0);
        }
    }

    #[test]
    #[should_panic(expected = "empty factor list")]
    fn empty_chain_rejected() {
        let _ = stratify(&[], StratAlgo::Qrp);
    }
}
