//! Recovery policy and event log for fault-tolerant sweeping.
//!
//! A production-scale QMC run must survive device faults, numerical
//! blow-ups and mid-run kills without losing its Markov chain. This module
//! holds the knobs and bookkeeping; the state machine itself lives in
//! [`crate::sweep::DqmcCore`]:
//!
//! 1. **Retry** — up to [`RecoveryPolicy::max_retries`] times per incident.
//!    One-shot faults (a dropped transfer, a transient launch failure)
//!    vanish on re-execution, and the device backend re-uploads its
//!    resident operands first.
//! 2. **Escalate** — device-class faults that persist abandon the device
//!    and fall back to the host path for the rest of the run; taint-class
//!    faults (non-finite cluster products — the long-B-chain instability
//!    the paper's stratification exists to control) *shrink the cluster
//!    size* to its largest proper divisor, trading speed for stability at
//!    runtime exactly as Bauer (2020) prescribes.
//! 3. **Repair** — a tainted Green's function is rebuilt from the HS field
//!    (which is always clean), resynchronizing the sign.
//!
//! Only when every rung is exhausted does the run abort. Every action is
//! recorded in a [`RecoveryLog`] so tests — and the CLI summary — can prove
//! what happened.

use std::fmt;

/// Knobs controlling the recovery state machine.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryPolicy {
    /// Master switch. Disabled, any backend fault is a panic (the pre-fault
    /// behavior, and what `checked-invariants` CI relies on for genuine
    /// logic bugs).
    pub enabled: bool,
    /// Plain re-executions of the failed phase before escalating.
    pub max_retries: u32,
    /// Floor for adaptive cluster-size shrinking.
    pub min_cluster: usize,
    /// Whether a persistent device fault may abandon the device for the
    /// host path.
    pub allow_host_fallback: bool,
    /// Relative wrap-vs-recompute divergence at a cluster boundary above
    /// which the cluster cache is declared corrupt and rebuilt (the silent
    /// bit-flip detector). Healthy runs sit many orders below this.
    pub wrap_tolerance: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            enabled: true,
            max_retries: 2,
            min_cluster: 1,
            allow_host_fallback: true,
            wrap_tolerance: 1e-3,
        }
    }
}

impl RecoveryPolicy {
    /// A policy with recovery switched off (fail-fast).
    pub fn disabled() -> Self {
        RecoveryPolicy {
            enabled: false,
            ..RecoveryPolicy::default()
        }
    }
}

/// What went wrong.
#[derive(Clone, Debug)]
pub enum RecoveryCause {
    /// The backend reported a device failure (launch, arena, transfer).
    Device(String),
    /// Non-finite data was detected (cluster product, wrapped or injected G).
    NonFinite(String),
    /// The wrap-vs-recompute monitor exceeded the policy tolerance,
    /// indicating silent (finite) corruption of cached cluster data.
    WrapDivergence {
        /// The observed relative difference.
        diff: f64,
    },
    /// The backend indicted the *device itself* (hung op, sick window).
    /// The in-core ladder refuses these: they escape to the scheduler.
    Sick(String),
}

/// What the recovery layer did about it.
#[derive(Clone, Debug)]
pub enum RecoveryAction {
    /// Re-executed the failed phase.
    Retry {
        /// 1-based attempt number within the incident.
        attempt: u32,
    },
    /// Shrunk the runtime cluster size (stabilization cadence).
    ClusterShrink {
        /// Cluster size before.
        from: usize,
        /// Cluster size after.
        to: usize,
    },
    /// Abandoned the device backend for the host path.
    HostFallback,
    /// Rebuilt the Green's function from the HS field.
    TaintRepair,
    /// Refused to handle the fault in-core and escalated it to the caller
    /// (the scheduler parks the job and indicts the device slot).
    Escalated,
}

/// One recovery incident: where, why, and what was done.
#[derive(Clone, Debug)]
pub struct RecoveryEvent {
    /// Sweep counter at the time of the incident.
    pub sweep: u64,
    /// Imaginary-time slice being processed.
    pub slice: usize,
    /// The detected failure.
    pub cause: RecoveryCause,
    /// The response.
    pub action: RecoveryAction,
}

impl fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cause = match &self.cause {
            RecoveryCause::Device(d) => format!("device: {d}"),
            RecoveryCause::NonFinite(d) => format!("non-finite: {d}"),
            RecoveryCause::WrapDivergence { diff } => format!("wrap divergence {diff:.3e}"),
            RecoveryCause::Sick(d) => format!("sick device: {d}"),
        };
        let action = match &self.action {
            RecoveryAction::Retry { attempt } => format!("retry #{attempt}"),
            RecoveryAction::ClusterShrink { from, to } => format!("shrink k {from}→{to}"),
            RecoveryAction::HostFallback => "host fallback".to_string(),
            RecoveryAction::TaintRepair => "taint repair".to_string(),
            RecoveryAction::Escalated => "escalated to scheduler".to_string(),
        };
        write!(
            f,
            "sweep {} slice {}: {cause} → {action}",
            self.sweep, self.slice
        )
    }
}

/// Append-only log of recovery incidents.
///
/// `prior` carries the event count across a checkpoint/resume cycle: a
/// resumed run whose pre-kill half saw recovery must still report (and
/// relax the incremental-sign assertion for) those incidents.
#[derive(Clone, Debug, Default)]
pub struct RecoveryLog {
    events: Vec<RecoveryEvent>,
    prior: u64,
}

impl RecoveryLog {
    /// An empty log.
    pub fn new() -> Self {
        RecoveryLog::default()
    }

    /// Records an incident.
    pub fn push(&mut self, event: RecoveryEvent) {
        self.events.push(event);
    }

    /// Incidents recorded this process (excludes `prior`).
    pub fn events(&self) -> &[RecoveryEvent] {
        &self.events
    }

    /// Total incidents including those inherited from a checkpoint.
    pub fn total(&self) -> u64 {
        self.prior + self.events.len() as u64
    }

    /// True when no incident has ever occurred, before or after a resume.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Sets the count of incidents inherited from a checkpoint.
    pub fn set_prior(&mut self, prior: u64) {
        self.prior = prior;
    }

    /// Per-action-class counts of this process's events (excludes `prior`,
    /// whose classification did not survive the checkpoint).
    pub fn tallies(&self) -> RecoveryTallies {
        let mut t = RecoveryTallies::default();
        for e in &self.events {
            match e.action {
                RecoveryAction::Retry { .. } => t.retries += 1,
                RecoveryAction::ClusterShrink { .. } => t.shrinks += 1,
                RecoveryAction::HostFallback => t.fallbacks += 1,
                RecoveryAction::TaintRepair => t.repairs += 1,
                RecoveryAction::Escalated => t.escalations += 1,
            }
        }
        t
    }

    /// One-line summary: counts per action class.
    pub fn summary(&self) -> String {
        if self.is_empty() {
            return "no recovery events".to_string();
        }
        let t = self.tallies();
        format!(
            "{} recovery events ({} prior): {} retries, {} cluster shrinks, \
             {} host fallbacks, {} taint repairs, {} escalations",
            self.total(),
            self.prior,
            t.retries,
            t.shrinks,
            t.fallbacks,
            t.repairs,
            t.escalations,
        )
    }
}

/// Counts of recovery actions by class — the classification half of the
/// taxonomy, surfaced through scheduler reports and `dqmc-run sweep --trace`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryTallies {
    /// Plain re-executions.
    pub retries: u64,
    /// Adaptive cluster-size shrinks.
    pub shrinks: u64,
    /// Device abandonments for the host path.
    pub fallbacks: u64,
    /// Green's-function rebuilds from the HS field.
    pub repairs: u64,
    /// Faults refused in-core and escalated to the scheduler.
    pub escalations: u64,
}

impl RecoveryTallies {
    /// Element-wise sum (pooling across chains).
    pub fn merge(&mut self, other: &RecoveryTallies) {
        self.retries += other.retries;
        self.shrinks += other.shrinks;
        self.fallbacks += other.fallbacks;
        self.repairs += other.repairs;
        self.escalations += other.escalations;
    }
}

/// The next smaller cluster size in the shrink ladder: `k` divided by its
/// smallest prime factor (so every old cluster boundary remains a boundary
/// — `k_new | k_old` — and a mid-run shrink never strands the sweep's
/// recompute schedule). Returns 1 for `k ≤ 1`.
pub fn shrink_cluster_size(k: usize) -> usize {
    if k <= 1 {
        return 1;
    }
    let mut p = 2;
    while p * p <= k {
        if k.is_multiple_of(p) {
            return k / p;
        }
        p += 1;
    }
    // k is prime: the only proper divisor is 1.
    1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrink_ladder_divides_and_terminates() {
        assert_eq!(shrink_cluster_size(16), 8);
        assert_eq!(shrink_cluster_size(10), 5);
        assert_eq!(shrink_cluster_size(9), 3);
        assert_eq!(shrink_cluster_size(7), 1);
        assert_eq!(shrink_cluster_size(1), 1);
        assert_eq!(shrink_cluster_size(0), 1);
        // Each step strictly divides: the ladder reaches 1 in finitely many
        // steps from any start.
        let mut k = 360;
        let mut steps = 0;
        while k > 1 {
            let next = shrink_cluster_size(k);
            assert!(next < k && k % next == 0);
            k = next;
            steps += 1;
        }
        assert!(steps <= 9);
    }

    #[test]
    fn log_counts_prior_events() {
        let mut log = RecoveryLog::new();
        assert!(log.is_empty());
        log.set_prior(3);
        assert!(!log.is_empty());
        assert_eq!(log.total(), 3);
        log.push(RecoveryEvent {
            sweep: 1,
            slice: 0,
            cause: RecoveryCause::Device("x".into()),
            action: RecoveryAction::Retry { attempt: 1 },
        });
        assert_eq!(log.total(), 4);
        assert_eq!(log.events().len(), 1);
        assert!(log.summary().contains("4 recovery events"));
    }

    #[test]
    fn event_display_is_readable() {
        let e = RecoveryEvent {
            sweep: 12,
            slice: 7,
            cause: RecoveryCause::WrapDivergence { diff: 0.25 },
            action: RecoveryAction::ClusterShrink { from: 10, to: 5 },
        };
        let s = e.to_string();
        assert!(s.contains("sweep 12"), "{s}");
        assert!(s.contains("shrink k 10→5"), "{s}");
    }
}
