//! Compute-backend abstraction for cluster products and wrapping.
//!
//! The sweep's two heavy kernels — the cluster product `B_{hi−1}⋯B_{lo}` and
//! the wrap `G ← B_l G B_l⁻¹` — can run either on the host BLAS path or on
//! the simulated accelerator in the `gpusim` crate. This trait inverts the
//! dependency: `gpusim` already depends on this crate, so the sweep cannot
//! name the device directly; instead the device implements [`ComputeBackend`]
//! and is boxed into [`crate::sweep::DqmcCore`].
//!
//! Backends are *fallible*: a device may drop a transfer, fail a kernel
//! launch or exhaust its arena. Faults surface as [`BackendFault`] values —
//! never panics — so the recovery policy in `sweep` can retry, shrink the
//! cluster size, or fall back to [`HostBackend`].

use crate::bmat::BMatrixFactory;
use crate::hs::HsField;
use crate::hubbard::Spin;
use linalg::Matrix;
use std::fmt;

/// Broad classification of a backend failure, driving the recovery policy's
/// escalation order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The device itself failed (launch failure, arena exhaustion): the
    /// computation never completed. Retry, then abandon the device.
    Device,
    /// The computation completed but produced tainted (non-finite) or
    /// implausible data: retry, then stabilize harder (shrink clusters).
    Taint,
    /// The *device* is suspect — an op hung past its logical deadline or
    /// the device is in a scripted sick window. The in-core ladder must
    /// NOT absorb this: it escapes to the scheduler, which parks the job,
    /// excludes the slot, and feeds the pool's circuit breaker.
    Sick,
    /// The device wedged mid-op (indefinite hang): the hard flavor of
    /// [`FaultKind::Sick`] — the worker driving it is declared lost.
    Wedged,
}

/// A recoverable backend failure.
#[derive(Clone, Debug)]
pub struct BackendFault {
    /// What class of failure this is.
    pub kind: FaultKind,
    /// Human-readable description (kernel name, indices, offending value).
    pub detail: String,
}

impl BackendFault {
    /// A device-class fault.
    pub fn device(detail: impl Into<String>) -> Self {
        BackendFault {
            kind: FaultKind::Device,
            detail: detail.into(),
        }
    }

    /// A taint-class (non-finite data) fault.
    pub fn taint(detail: impl Into<String>) -> Self {
        BackendFault {
            kind: FaultKind::Taint,
            detail: detail.into(),
        }
    }

    /// A sick-device fault. `wedged` selects the hard (worker-lost) flavor.
    pub fn sick(detail: impl Into<String>, wedged: bool) -> Self {
        BackendFault {
            kind: if wedged {
                FaultKind::Wedged
            } else {
                FaultKind::Sick
            },
            detail: detail.into(),
        }
    }

    /// Whether the fault indicts the device itself (and must escape the
    /// in-core recovery ladder).
    pub fn is_sick(&self) -> bool {
        matches!(self.kind, FaultKind::Sick | FaultKind::Wedged)
    }
}

impl fmt::Display for BackendFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FaultKind::Device => write!(f, "device fault: {}", self.detail),
            FaultKind::Taint => write!(f, "tainted data: {}", self.detail),
            FaultKind::Sick => write!(f, "sick device: {}", self.detail),
            FaultKind::Wedged => write!(f, "wedged device: {}", self.detail),
        }
    }
}

impl std::error::Error for BackendFault {}

/// A provider of the sweep's two heavy kernels.
pub trait ComputeBackend: fmt::Debug + Send {
    /// Short name for reports ("host", "sim-tesla-c2050", …).
    fn name(&self) -> &str;

    /// Computes the cluster product `B_{hi−1} ⋯ B_{lo}` for `spin`.
    fn cluster(
        &mut self,
        fac: &BMatrixFactory,
        h: &HsField,
        lo: usize,
        hi: usize,
        spin: Spin,
    ) -> Result<Matrix, BackendFault>;

    /// Wraps `out ← B_l · g · B_l⁻¹` for `spin`.
    #[allow(clippy::too_many_arguments)]
    fn wrap_into(
        &mut self,
        fac: &BMatrixFactory,
        h: &HsField,
        l: usize,
        spin: Spin,
        g: &Matrix,
        out: &mut Matrix,
    ) -> Result<(), BackendFault>;

    /// Called by the recovery layer after any fault, before a retry. Device
    /// backends drop resident operands here so the retry re-uploads clean
    /// copies (healing a corrupted transfer); the default is a no-op.
    fn notify_fault(&mut self) {}

    /// Modeled device-seconds consumed so far (simulated-clock backends);
    /// `0.0` for backends with no device clock, like the host.
    fn device_seconds(&self) -> f64 {
        0.0
    }
}

/// The infallible host path: delegates straight to [`BMatrixFactory`].
#[derive(Clone, Copy, Debug, Default)]
pub struct HostBackend;

impl ComputeBackend for HostBackend {
    fn name(&self) -> &str {
        "host"
    }

    fn cluster(
        &mut self,
        fac: &BMatrixFactory,
        h: &HsField,
        lo: usize,
        hi: usize,
        spin: Spin,
    ) -> Result<Matrix, BackendFault> {
        Ok(fac.cluster(h, lo, hi, spin))
    }

    fn wrap_into(
        &mut self,
        fac: &BMatrixFactory,
        h: &HsField,
        l: usize,
        spin: Spin,
        g: &Matrix,
        out: &mut Matrix,
    ) -> Result<(), BackendFault> {
        fac.wrap_into(h, l, spin, g, out);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hubbard::ModelParams;
    use lattice::Lattice;

    #[test]
    fn host_backend_matches_factory() {
        let model = ModelParams::new(Lattice::square(2, 2, 1.0), 4.0, 0.0, 0.125, 8);
        let fac = BMatrixFactory::new(&model);
        let mut rng = util::Rng::new(11);
        let h = HsField::random(4, 8, &mut rng);
        let mut be = HostBackend;
        let got = be.cluster(&fac, &h, 0, 4, Spin::Up).unwrap();
        assert_eq!(got, fac.cluster(&h, 0, 4, Spin::Up));

        let g = crate::greens::greens_naive(&fac, &h, Spin::Down).g;
        let mut out = Matrix::zeros(4, 4);
        be.wrap_into(&fac, &h, 0, Spin::Down, &g, &mut out).unwrap();
        assert_eq!(out, crate::greens::wrap(&fac, &h, 0, Spin::Down, &g));
    }

    #[test]
    fn fault_display_names_kind() {
        let d = BackendFault::device("launch 3 failed");
        let t = BackendFault::taint("NaN at 7");
        assert!(d.to_string().contains("device fault"));
        assert!(t.to_string().contains("tainted"));
    }
}
