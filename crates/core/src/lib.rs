//! Determinant Quantum Monte Carlo for the Hubbard model.
//!
//! This crate is the Rust reproduction of QUEST as described in
//! *"Advancing Large Scale Many-Body QMC Simulations on GPU Accelerated
//! Multicore Systems"* (IPDPS 2012). It implements:
//!
//! - the DQMC sweep (the paper's Algorithm 1) with Metropolis sampling of
//!   the Hubbard–Stratonovich field and **delayed (blocked) rank-1 Green's
//!   function updates** ([`update`]),
//! - numerically stable Green's function evaluation through graded `Q·D·T`
//!   decompositions: the original QRP **stratification** (Algorithm 2) and
//!   the paper's novel **stratification with pre-pivoting** (Algorithm 3)
//!   in [`mod@stratify`],
//! - the cost reducers of §III: **matrix clustering** ([`bmat`]),
//!   **wrapping** ([`greens`]), and **cluster recycling** ([`recycle`]),
//! - equal-time physical measurements — momentum distribution ⟨n_k⟩,
//!   spin–spin correlation C_zz(r), densities, energies ([`measure`]),
//! - a per-phase profiler matching the paper's Table I ([`profile`]),
//! - a top-level [`Simulation`] driver ([`sim`]),
//! - a robustness subsystem: pluggable fallible compute backends
//!   ([`backend`]), a retry / cluster-shrink / host-fallback recovery
//!   ladder ([`recovery`]), and versioned checksummed checkpointing with
//!   bit-identical resume ([`checkpoint`]).
//!
//! # Quick start
//!
//! ```
//! use dqmc::{ModelParams, SimParams, Simulation};
//! use lattice::Lattice;
//!
//! let model = ModelParams::new(Lattice::square(4, 4, 1.0), 4.0, 0.0, 0.125, 8);
//! let params = SimParams::new(model).with_sweeps(20, 50).with_seed(7);
//! let mut sim = Simulation::new(params);
//! sim.run();
//! let obs = sim.observables();
//! let (rho, _) = obs.density();
//! assert!((rho - 1.0).abs() < 0.05); // half filling at μ̃ = 0
//! ```

pub mod backend;
pub mod bmat;
pub mod checkpoint;
pub mod crowd;
pub mod diagnostics;
pub mod ensemble;
pub mod greens;
pub mod hs;
pub mod hubbard;
pub mod measure;
pub mod profile;
pub mod recovery;
pub mod recycle;
pub mod sim;
pub mod stratify;
pub mod sweep;
pub mod tdm;
pub mod update;

pub use backend::{BackendFault, ComputeBackend, FaultKind, HostBackend};
pub use bmat::BMatrixFactory;
pub use checkpoint::{params_fingerprint, CheckpointError};
pub use crowd::{Crowd, CrowdBackend, HostCrowdBackend};
pub use diagnostics::{condition_profile, ConditionProfile};
pub use ensemble::{chain_seed, run_ensemble, run_ensemble_crowd, EnsembleResult};
pub use greens::{greens_from_udt, GreensFunction};
pub use hs::HsField;
pub use hubbard::{Acceptance, ModelParams, SimParams, Spin};
pub use measure::{JackknifeScalars, Observables};
pub use profile::phases;
pub use recovery::{
    shrink_cluster_size, RecoveryAction, RecoveryCause, RecoveryEvent, RecoveryLog, RecoveryPolicy,
    RecoveryTallies,
};
pub use recycle::ClusterCache;
pub use sim::Simulation;
pub use stratify::{stratify, StratAlgo, StratifyState, Udt};
pub use tdm::{unequal_time_greens, unequal_time_greens_stable, TimeDependentObs};
pub use util::{DqmcError, RunToken, Severity};
