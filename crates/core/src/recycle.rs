//! Matrix-cluster cache (the paper's "recycling", §III-B2).
//!
//! Within one sweep only the cluster containing the slice currently being
//! updated changes; the other `L_k − 1` cluster products are bitwise
//! reusable across Green's-function recomputations — and across the sweep
//! boundary into the next sweep. Storing them trades O(L_k·N²) memory (tens
//! of MB at N = 1024, as the paper notes) for skipping most of the
//! clustering GEMMs.

use crate::backend::{BackendFault, ComputeBackend};
use crate::bmat::BMatrixFactory;
use crate::hs::HsField;
use crate::hubbard::Spin;
use linalg::Matrix;

/// Cache of per-spin cluster products `B̂_c = B_{(c+1)k−1} ⋯ B_{ck}` with
/// dirty tracking.
#[derive(Clone, Debug)]
pub struct ClusterCache {
    k: usize,
    slices: usize,
    nclusters: usize,
    /// `store[spin][c]`: cached product, `None` until first use.
    store: [Vec<Option<Matrix>>; 2],
    /// Rebuild counters (for the Table I "clustering" cost attribution).
    rebuilds: usize,
    hits: usize,
}

impl ClusterCache {
    /// Creates an empty cache for `slices` time slices clustered by `k`.
    pub fn new(slices: usize, k: usize) -> Self {
        assert!(k >= 1 && k <= slices, "cluster size must be in 1..=L");
        let nclusters = slices.div_ceil(k);
        ClusterCache {
            k,
            slices,
            nclusters,
            store: [vec![None; nclusters], vec![None; nclusters]],
            rebuilds: 0,
            hits: 0,
        }
    }

    /// Cluster size `k`.
    pub fn cluster_size(&self) -> usize {
        self.k
    }

    /// Number of clusters `L_k`.
    pub fn nclusters(&self) -> usize {
        self.nclusters
    }

    /// Cluster index containing time slice `l`.
    pub fn cluster_of(&self, l: usize) -> usize {
        debug_assert!(l < self.slices);
        l / self.k
    }

    /// Slice range `[lo, hi)` of cluster `c`.
    pub fn range(&self, c: usize) -> (usize, usize) {
        debug_assert!(c < self.nclusters);
        (c * self.k, ((c + 1) * self.k).min(self.slices))
    }

    /// Invalidates the cluster containing slice `l` for both spins
    /// (call after any accepted flip on that slice).
    pub fn invalidate_slice(&mut self, l: usize) {
        let c = self.cluster_of(l);
        self.store[0][c] = None;
        self.store[1][c] = None;
    }

    /// Invalidates everything (e.g. after externally replacing the field).
    pub fn invalidate_all(&mut self) {
        for s in &mut self.store {
            for e in s.iter_mut() {
                *e = None;
            }
        }
    }

    /// Re-clusters the cache at a new (smaller or larger) cluster size,
    /// dropping every cached product but keeping the hit/rebuild counters.
    /// Used by the recovery layer's adaptive cluster-size shrink.
    pub fn reshape(&mut self, k: usize) {
        assert!(k >= 1 && k <= self.slices, "cluster size must be in 1..=L");
        let nclusters = self.slices.div_ceil(k);
        self.k = k;
        self.nclusters = nclusters;
        self.store = [vec![None; nclusters], vec![None; nclusters]];
    }

    /// Returns cluster `c` for `spin`, rebuilding from the field if dirty.
    pub fn get(&mut self, fac: &BMatrixFactory, h: &HsField, c: usize, spin: Spin) -> &Matrix {
        let slot = &mut self.store[spin.index()][c];
        if slot.is_none() {
            let (lo, hi) = (c * self.k, ((c + 1) * self.k).min(self.slices));
            *slot = Some(fac.cluster(h, lo, hi, spin));
            self.rebuilds += 1;
        } else {
            self.hits += 1;
        }
        slot.as_ref().expect("just filled")
    }

    /// Whether cluster `c` for `spin` would need a rebuild on next access
    /// (empty or invalidated). Crowd drivers scan this to decide which
    /// walkers join a batched prefill.
    pub fn is_stale(&self, c: usize, spin: Spin) -> bool {
        self.store[spin.index()][c].is_none()
    }

    /// Installs an externally computed product for cluster `c` (a crowd
    /// prefill), scanning for non-finite taint *before* caching — same
    /// contract as [`ClusterCache::get_with`]: a poisoned product never
    /// enters the cache, and the caller decides how to heal (typically by
    /// leaving the slot stale so the next access rebuilds on the host).
    pub fn install(&mut self, c: usize, spin: Spin, m: Matrix) -> Result<(), BackendFault> {
        let (lo, hi) = self.range(c);
        if let Some((i, v)) = linalg::check::first_non_finite(m.as_slice()) {
            return Err(BackendFault::taint(format!(
                "{v} at flat index {i} in prefilled cluster [{lo}, {hi}) {spin:?}"
            )));
        }
        self.store[spin.index()][c] = Some(m);
        self.rebuilds += 1;
        Ok(())
    }

    /// Fallible [`ClusterCache::get`] through a [`ComputeBackend`]: rebuilds
    /// through `backend` if dirty, scanning the fresh product for
    /// non-finite taint *before* caching it — a poisoned product must never
    /// enter the cache (or the stratification, where `checked-invariants`
    /// builds would abort before recovery could act).
    pub fn get_with(
        &mut self,
        backend: &mut dyn ComputeBackend,
        fac: &BMatrixFactory,
        h: &HsField,
        c: usize,
        spin: Spin,
    ) -> Result<&Matrix, BackendFault> {
        let slot = &mut self.store[spin.index()][c];
        if slot.is_none() {
            let (lo, hi) = (c * self.k, ((c + 1) * self.k).min(self.slices));
            let m = backend.cluster(fac, h, lo, hi, spin)?;
            if let Some((i, v)) = linalg::check::first_non_finite(m.as_slice()) {
                return Err(BackendFault::taint(format!(
                    "{v} at flat index {i} in cluster [{lo}, {hi}) {spin:?} from backend '{}'",
                    backend.name()
                )));
            }
            *slot = Some(m);
            self.rebuilds += 1;
        } else {
            self.hits += 1;
        }
        Ok(slot.as_ref().expect("just filled"))
    }

    /// Fallible [`ClusterCache::factors_after_slice`] through a
    /// [`ComputeBackend`]; see [`ClusterCache::get_with`] for the taint
    /// contract.
    pub fn factors_with(
        &mut self,
        backend: &mut dyn ComputeBackend,
        fac: &BMatrixFactory,
        h: &HsField,
        l: usize,
        spin: Spin,
    ) -> Result<Vec<Matrix>, BackendFault> {
        let c = self.cluster_of(l);
        let (_, hi) = self.range(c);
        assert_eq!(l + 1, hi, "recompute must land on a cluster boundary");
        let mut order = Vec::with_capacity(self.nclusters);
        for off in 1..=self.nclusters {
            let cc = (c + off) % self.nclusters;
            order.push(self.get_with(backend, fac, h, cc, spin)?.clone());
        }
        Ok(order)
    }

    /// Collects the factor sequence for the Green's function used at slice
    /// `l+1` (i.e. after wrapping past slice `l`): the product
    /// `B_l ⋯ B_0 · B_{L−1} ⋯ B_{l+1}`, as clusters in application order
    /// (rightmost factor first). `l` must be the last slice of its cluster.
    pub fn factors_after_slice(
        &mut self,
        fac: &BMatrixFactory,
        h: &HsField,
        l: usize,
        spin: Spin,
    ) -> Vec<Matrix> {
        let c = self.cluster_of(l);
        let (_, hi) = self.range(c);
        assert_eq!(l + 1, hi, "recompute must land on a cluster boundary");
        let mut order = Vec::with_capacity(self.nclusters);
        // Applied first: cluster c+1 (its rightmost factor is B_{l+1}), then
        // wrap around to cluster c last.
        for off in 1..=self.nclusters {
            let cc = (c + off) % self.nclusters;
            order.push(self.get(fac, h, cc, spin).clone());
        }
        order
    }

    /// `(rebuilds, hits)` counters.
    pub fn stats(&self) -> (usize, usize) {
        (self.rebuilds, self.hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hubbard::ModelParams;
    use lattice::Lattice;

    fn setup() -> (BMatrixFactory, HsField) {
        let model = ModelParams::new(Lattice::square(2, 2, 1.0), 4.0, 0.0, 0.125, 12);
        let fac = BMatrixFactory::new(&model);
        let mut rng = util::Rng::new(1);
        let h = HsField::random(4, 12, &mut rng);
        (fac, h)
    }

    #[test]
    fn geometry_of_clusters() {
        let c = ClusterCache::new(12, 4);
        assert_eq!(c.nclusters(), 3);
        assert_eq!(c.cluster_of(0), 0);
        assert_eq!(c.cluster_of(3), 0);
        assert_eq!(c.cluster_of(4), 1);
        assert_eq!(c.range(2), (8, 12));
    }

    #[test]
    fn ragged_final_cluster() {
        let c = ClusterCache::new(10, 4);
        assert_eq!(c.nclusters(), 3);
        assert_eq!(c.range(2), (8, 10));
    }

    #[test]
    fn get_matches_direct_cluster() {
        let (fac, h) = setup();
        let mut cache = ClusterCache::new(12, 4);
        let got = cache.get(&fac, &h, 1, Spin::Up).clone();
        let want = fac.cluster(&h, 4, 8, Spin::Up);
        assert!(got.max_abs_diff(&want) < 1e-15);
    }

    #[test]
    fn cache_hit_avoids_rebuild() {
        let (fac, h) = setup();
        let mut cache = ClusterCache::new(12, 4);
        let _ = cache.get(&fac, &h, 0, Spin::Up);
        let _ = cache.get(&fac, &h, 0, Spin::Up);
        let _ = cache.get(&fac, &h, 0, Spin::Down);
        assert_eq!(cache.stats(), (2, 1));
    }

    #[test]
    fn invalidate_slice_forces_rebuild() {
        let (fac, mut h) = setup();
        let mut cache = ClusterCache::new(12, 4);
        let before = cache.get(&fac, &h, 0, Spin::Up).clone();
        h.flip(2, 1); // slice 2 lives in cluster 0
        cache.invalidate_slice(2);
        let after = cache.get(&fac, &h, 0, Spin::Up).clone();
        assert!(before.max_abs_diff(&after) > 1e-12, "must reflect the flip");
        let direct = fac.cluster(&h, 0, 4, Spin::Up);
        assert!(after.max_abs_diff(&direct) < 1e-15);
    }

    #[test]
    fn factors_order_rotates_correctly() {
        let (fac, h) = setup();
        let mut cache = ClusterCache::new(12, 4);
        // After slice 7 (end of cluster 1), updating slice 8 uses
        // B_7…B_0 B_11…B_8: application order = cluster 2, cluster 0, cluster 1.
        let factors = cache.factors_after_slice(&fac, &h, 7, Spin::Up);
        assert_eq!(factors.len(), 3);
        assert!(factors[0].max_abs_diff(&fac.cluster(&h, 8, 12, Spin::Up)) < 1e-15);
        assert!(factors[1].max_abs_diff(&fac.cluster(&h, 0, 4, Spin::Up)) < 1e-15);
        assert!(factors[2].max_abs_diff(&fac.cluster(&h, 4, 8, Spin::Up)) < 1e-15);
    }

    #[test]
    fn canonical_order_at_sweep_end() {
        let (fac, h) = setup();
        let mut cache = ClusterCache::new(12, 4);
        // After the last slice (11): canonical order, cluster 0 first.
        let factors = cache.factors_after_slice(&fac, &h, 11, Spin::Down);
        assert!(factors[0].max_abs_diff(&fac.cluster(&h, 0, 4, Spin::Down)) < 1e-15);
        assert!(factors[2].max_abs_diff(&fac.cluster(&h, 8, 12, Spin::Down)) < 1e-15);
    }

    #[test]
    #[should_panic(expected = "cluster boundary")]
    fn mid_cluster_recompute_rejected() {
        let (fac, h) = setup();
        let mut cache = ClusterCache::new(12, 4);
        let _ = cache.factors_after_slice(&fac, &h, 5, Spin::Up);
    }

    #[test]
    fn reshape_preserves_boundaries_and_drops_cache() {
        let (fac, h) = setup();
        let mut cache = ClusterCache::new(12, 4);
        let _ = cache.get(&fac, &h, 0, Spin::Up);
        cache.reshape(2);
        assert_eq!(cache.cluster_size(), 2);
        assert_eq!(cache.nclusters(), 6);
        // Old boundary l = 7 is still a boundary under the halved size.
        let factors = cache.factors_after_slice(&fac, &h, 7, Spin::Up);
        assert_eq!(factors.len(), 6);
        assert!(factors[0].max_abs_diff(&fac.cluster(&h, 8, 10, Spin::Up)) < 1e-15);
        // All cached products were dropped: every factor was a rebuild
        // (1 from before + 6 now), and the pre-reshape hit count is kept.
        assert_eq!(cache.stats().0, 7);
    }

    #[test]
    fn get_with_matches_get_on_host_backend() {
        let (fac, h) = setup();
        let mut host = crate::backend::HostBackend;
        let mut a = ClusterCache::new(12, 4);
        let mut b = ClusterCache::new(12, 4);
        let ga = a.get(&fac, &h, 1, Spin::Up).clone();
        let gb = b
            .get_with(&mut host, &fac, &h, 1, Spin::Up)
            .unwrap()
            .clone();
        assert_eq!(ga, gb);
        let fa = a.factors_after_slice(&fac, &h, 11, Spin::Down);
        let fb = b.factors_with(&mut host, &fac, &h, 11, Spin::Down).unwrap();
        assert_eq!(fa, fb);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn get_with_rejects_tainted_product_without_caching() {
        #[derive(Debug)]
        struct PoisonBackend;
        impl ComputeBackend for PoisonBackend {
            fn name(&self) -> &str {
                "poison"
            }
            fn cluster(
                &mut self,
                fac: &BMatrixFactory,
                _h: &HsField,
                _lo: usize,
                _hi: usize,
                _spin: Spin,
            ) -> Result<Matrix, BackendFault> {
                let mut m = Matrix::identity(fac.nsites());
                m[(0, 0)] = f64::NAN;
                Ok(m)
            }
            fn wrap_into(
                &mut self,
                _fac: &BMatrixFactory,
                _h: &HsField,
                _l: usize,
                _spin: Spin,
                _g: &Matrix,
                _out: &mut Matrix,
            ) -> Result<(), BackendFault> {
                Ok(())
            }
        }

        let (fac, h) = setup();
        let mut cache = ClusterCache::new(12, 4);
        let err = cache
            .get_with(&mut PoisonBackend, &fac, &h, 0, Spin::Up)
            .unwrap_err();
        assert_eq!(err.kind, crate::backend::FaultKind::Taint);
        // The poisoned product must not have been cached: a host retry
        // rebuilds cleanly.
        let clean = cache
            .get_with(&mut crate::backend::HostBackend, &fac, &h, 0, Spin::Up)
            .unwrap();
        assert!(clean.as_slice().iter().all(|x| x.is_finite()));
    }
}
