//! Equal-time physical measurements (§V of the paper).
//!
//! All observables derive from the equal-time Green's functions via Wick's
//! theorem at fixed Hubbard–Stratonovich configuration. Conventions:
//!
//! - `G_σ[(i, j)] = ⟨c_i c†_j⟩_σ`, so `⟨c†_j c_i⟩_σ = δ_ij − G_σ[(i, j)]`,
//! - densities: `⟨n_{r,σ}⟩ = 1 − G_σ[(r, r)]`,
//! - momentum distribution: Fourier transform of `I − G` (Figure 5/6),
//! - spin–spin correlation `C_zz(r)` (Figure 7) and the antiferromagnetic
//!   structure factor `S(π,π)`,
//! - kinetic/interaction energies and double occupancy.
//!
//! Away from half filling configurations carry a fermion sign; every
//! observable is accumulated sign-weighted and normalised by ⟨sign⟩.

use crate::hubbard::ModelParams;
use lattice::{fourier, Lattice};
use linalg::Matrix;
use util::BinnedAccumulator;

/// Scalar observables with delete-one jackknife `(value, error)` pairs,
/// produced by [`Observables::jackknife_scalars`]. Each ratio observable is
/// jackknifed jointly with the sign, so the error bars stay honest away
/// from half filling where ⟨sign⟩ < 1.
#[derive(Clone, Copy, Debug)]
pub struct JackknifeScalars {
    /// Average fermion sign ⟨s⟩.
    pub sign: (f64, f64),
    /// Electron density ⟨ρ⟩ per site.
    pub density: (f64, f64),
    /// Double occupancy ⟨n₊n₋⟩ per site.
    pub double_occ: (f64, f64),
    /// Kinetic energy per site.
    pub kinetic: (f64, f64),
    /// Potential energy per site.
    pub potential: (f64, f64),
    /// Antiferromagnetic structure factor S(π,π).
    pub saf: (f64, f64),
}

/// Scalar + lattice-resolved observables accumulated over a run.
#[derive(Clone, Debug)]
pub struct Observables {
    lat: Lattice,
    hop: Matrix,
    sign: BinnedAccumulator,
    density: BinnedAccumulator,
    double_occ: BinnedAccumulator,
    kinetic: BinnedAccumulator,
    potential: BinnedAccumulator,
    saf: BinnedAccumulator,
    /// Sign-weighted Σ C(d) over configurations (lx × ly).
    czz_sum: Matrix,
    /// Sign-weighted Σ ⟨c†c⟩ translation average (lx × ly).
    dm_corr_sum: Matrix,
    /// Sign-weighted Σ s-wave pair correlation P_s(d) (lx × ly).
    pair_sum: Matrix,
    /// Σ sign over recorded configurations.
    weight: f64,
    count: usize,
}

impl Observables {
    /// Creates an empty accumulator for a model (the hopping matrix is kept
    /// for kinetic-energy measurements) with the given bin size.
    pub fn new(model: &ModelParams, bin_size: usize) -> Self {
        let lat = model.lattice.clone();
        // Hopping-only matrix: kinetic energy excludes the chemical potential.
        let hop = lat.kinetic_matrix(0.0);
        Observables {
            czz_sum: Matrix::zeros(lat.lx(), lat.ly()),
            dm_corr_sum: Matrix::zeros(lat.lx(), lat.ly()),
            pair_sum: Matrix::zeros(lat.lx(), lat.ly()),
            lat,
            hop,
            sign: BinnedAccumulator::new(bin_size),
            density: BinnedAccumulator::new(bin_size),
            double_occ: BinnedAccumulator::new(bin_size),
            kinetic: BinnedAccumulator::new(bin_size),
            potential: BinnedAccumulator::new(bin_size),
            saf: BinnedAccumulator::new(bin_size),
            weight: 0.0,
            count: 0,
        }
    }

    /// Records one configuration from its Green's functions and sign.
    pub fn record(&mut self, u: f64, gup: &Matrix, gdn: &Matrix, sign: f64) {
        let n = self.lat.nsites();
        assert_eq!(gup.nrows(), n, "G↑/lattice mismatch");
        assert_eq!(gdn.nrows(), n, "G↓/lattice mismatch");

        // Site densities.
        let nup: Vec<f64> = (0..n).map(|r| 1.0 - gup[(r, r)]).collect();
        let ndn: Vec<f64> = (0..n).map(|r| 1.0 - gdn[(r, r)]).collect();
        let rho: f64 = nup.iter().zip(ndn.iter()).map(|(a, b)| a + b).sum::<f64>() / n as f64;
        let docc: f64 = nup.iter().zip(ndn.iter()).map(|(a, b)| a * b).sum::<f64>() / n as f64;

        // Kinetic energy per site: Σ_{r≠r'} K_hop[r,r'] ⟨c†_r c_{r'}⟩, both spins.
        let mut ekin = 0.0;
        for r in 0..n {
            for (rp, mult) in self.lat.neighbor_bonds(r) {
                let kamp = self.hop[(r, rp)];
                let _ = mult; // multiplicity already folded into the matrix
                              // ⟨c†_r c_{r'}⟩_σ = δ_{r r'} − G_σ[(r', r)]; r ≠ r' on bonds.
                ekin += kamp * (-gup[(rp, r)] - gdn[(rp, r)]);
            }
        }
        ekin /= n as f64;

        // Potential energy per site: U ⟨n₊ n₋⟩.
        let epot = u * docc;

        // Spin–spin correlation matrix C[(b, a)] = ⟨S^z_b S^z_a⟩ (×4: the
        // paper's convention uses (n₊ − n₋), not S^z = (n₊ − n₋)/2).
        let mut c = Matrix::zeros(n, n);
        for a in 0..n {
            for b in 0..n {
                let delta = if a == b { 1.0 } else { 0.0 };
                // ⟨n_b n_a⟩_σ = ⟨n_b⟩⟨n_a⟩ + ⟨c†_b c_a⟩⟨c_b c†_a⟩ with
                // ⟨c†_b c_a⟩ = δ_ab − G[(a, b)] and ⟨c_b c†_a⟩ = G[(b, a)].
                let same_up = nup[b] * nup[a] + (delta - gup[(a, b)]) * gup[(b, a)];
                let same_dn = ndn[b] * ndn[a] + (delta - gdn[(a, b)]) * gdn[(b, a)];
                let cross = nup[b] * ndn[a] + ndn[b] * nup[a];
                c[(b, a)] = same_up + same_dn - cross;
            }
        }
        let czz = fourier::translation_average(&self.lat, &c);

        // S(π,π): staggered sum of C_zz over displacements (per the usual
        // structure-factor definition S_AF = Σ_d (−1)^{dx+dy} C_zz(d)).
        let mut saf = 0.0;
        for dy in 0..self.lat.ly() {
            for dx in 0..self.lat.lx() {
                let par = if (dx + dy) % 2 == 0 { 1.0 } else { -1.0 };
                saf += par * czz[(dx, dy)];
            }
        }

        // Density correlation translation average for ⟨n_k⟩: spin-averaged
        // dm[(r, r')] = ⟨c†_{r'} c_r⟩ = δ − G.
        let mut dm = Matrix::identity(n);
        dm.axpy(-0.5, gup);
        dm.axpy(-0.5, gdn);
        let dm_avg = fourier::translation_average(&self.lat, &dm);

        // s-wave pair correlation P_s(b−a) = ⟨Δ_b Δ†_a⟩ with
        // Δ_a = c_{a↓} c_{a↑}; Wick factorises by spin: G↑[(b,a)]·G↓[(b,a)].
        let mut pair = Matrix::zeros(n, n);
        for a in 0..n {
            for b in 0..n {
                pair[(b, a)] = gup[(b, a)] * gdn[(b, a)];
            }
        }
        let pair_avg = fourier::translation_average(&self.lat, &pair);

        // Sign-weighted accumulation.
        self.sign.push(sign);
        self.density.push(sign * rho);
        self.double_occ.push(sign * docc);
        self.kinetic.push(sign * ekin);
        self.potential.push(sign * epot);
        self.saf.push(sign * saf);
        let mut w_czz = czz;
        w_czz.scale(sign);
        self.czz_sum.axpy(1.0, &w_czz);
        let mut w_dm = dm_avg;
        w_dm.scale(sign);
        self.dm_corr_sum.axpy(1.0, &w_dm);
        let mut w_pair = pair_avg;
        w_pair.scale(sign);
        self.pair_sum.axpy(1.0, &w_pair);
        self.weight += sign;
        self.count += 1;
    }

    /// Number of recorded configurations.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Number of complete measurement bins accumulated (a trailing partial
    /// bin is excluded, matching what the jackknife resamples).
    pub fn bin_count(&self) -> usize {
        self.sign.bins().len()
    }

    /// Merges another accumulator (an independent Markov chain over the
    /// same model and bin size) into this one.
    pub fn merge(&mut self, other: &Observables) {
        assert_eq!(
            self.lat, other.lat,
            "cannot merge observables from different lattices"
        );
        self.sign.merge(&other.sign);
        self.density.merge(&other.density);
        self.double_occ.merge(&other.double_occ);
        self.kinetic.merge(&other.kinetic);
        self.potential.merge(&other.potential);
        self.saf.merge(&other.saf);
        self.czz_sum.axpy(1.0, &other.czz_sum);
        self.dm_corr_sum.axpy(1.0, &other.dm_corr_sum);
        self.pair_sum.axpy(1.0, &other.pair_sum);
        self.weight += other.weight;
        self.count += other.count;
    }

    /// Average fermion sign `⟨sign⟩` with its standard error.
    pub fn avg_sign(&self) -> (f64, f64) {
        self.sign.mean_and_err()
    }

    /// The scalar observables with delete-one jackknife error bars — the
    /// pooled estimator of the sweep harness.
    ///
    /// Each physical observable is the ratio `⟨O·s⟩ / ⟨s⟩` of sign-weighted
    /// bins to sign bins; [`util::jackknife_ratio`] resamples numerator and
    /// denominator *together*, propagating their correlated fluctuations
    /// through the nonlinearity (the plain [`Observables::density`]-style
    /// accessors divide the errors, which is only exact when ⟨sign⟩ ≡ 1).
    /// The bins here are whatever this accumulator holds — call it on a
    /// merged ensemble for pooled cross-chain estimates. Deterministic:
    /// depends only on the bin sequence.
    pub fn jackknife_scalars(&self) -> JackknifeScalars {
        let s = self.sign.bins();
        JackknifeScalars {
            sign: util::jackknife_mean(s),
            density: util::jackknife_ratio(self.density.bins(), s),
            double_occ: util::jackknife_ratio(self.double_occ.bins(), s),
            kinetic: util::jackknife_ratio(self.kinetic.bins(), s),
            potential: util::jackknife_ratio(self.potential.bins(), s),
            saf: util::jackknife_ratio(self.saf.bins(), s),
        }
    }

    fn ratio(&self, acc: &BinnedAccumulator) -> (f64, f64) {
        let (s, _) = self.sign.mean_and_err();
        let (v, e) = acc.mean_and_err();
        if s == 0.0 {
            return (f64::NAN, f64::NAN);
        }
        // Ratio estimator; the sign fluctuation's contribution to the error
        // is negligible at/near half filling where ⟨sign⟩ ≈ 1.
        (v / s, e / s.abs())
    }

    /// Electron density ⟨ρ⟩ = ⟨n₊ + n₋⟩ per site, with error.
    pub fn density(&self) -> (f64, f64) {
        self.ratio(&self.density)
    }

    /// Double occupancy ⟨n₊ n₋⟩ per site, with error.
    pub fn double_occupancy(&self) -> (f64, f64) {
        self.ratio(&self.double_occ)
    }

    /// Kinetic energy per site, with error.
    pub fn kinetic_energy(&self) -> (f64, f64) {
        self.ratio(&self.kinetic)
    }

    /// Interaction energy `U⟨n₊n₋⟩` per site, with error.
    pub fn potential_energy(&self) -> (f64, f64) {
        self.ratio(&self.potential)
    }

    /// Antiferromagnetic structure factor `S(π,π)`, with error.
    pub fn af_structure_factor(&self) -> (f64, f64) {
        self.ratio(&self.saf)
    }

    /// Spin–spin correlation `C_zz(dx, dy)` (lx × ly matrix).
    pub fn czz(&self) -> Matrix {
        let mut m = self.czz_sum.clone();
        m.scale(1.0 / self.weight);
        m
    }

    /// Equal-time s-wave pair correlation `P_s(dx, dy) = ⟨Δ_{r+d} Δ†_r⟩`
    /// (lx × ly matrix). Its uniform (q = 0) sum is the s-wave pairing
    /// structure factor.
    pub fn swave_pair(&self) -> Matrix {
        let mut m = self.pair_sum.clone();
        m.scale(1.0 / self.weight);
        m
    }

    /// s-wave pairing structure factor `P_s = Σ_d P_s(d)`.
    pub fn swave_structure_factor(&self) -> f64 {
        self.swave_pair().as_slice().iter().sum()
    }

    /// Momentum distribution `⟨n_k⟩` on the (nx, ny) grid (lx × ly matrix),
    /// averaged over spin species.
    pub fn momentum_distribution(&self) -> Matrix {
        let mut c = self.dm_corr_sum.clone();
        c.scale(1.0 / self.weight);
        fourier::fourier_transform(&self.lat, &c)
    }

    /// ⟨n_k⟩ sampled along the Γ→M→X→Γ path (pairs of `(arc, value)`).
    pub fn momentum_distribution_path(&self) -> Vec<(f64, f64)> {
        let nk = self.momentum_distribution();
        lattice::symmetry_path(&self.lat)
            .iter()
            .map(|p| (p.arc, nk[(p.nx, p.ny)]))
            .collect()
    }

    /// Serializes the accumulated observables for checkpointing. The lattice
    /// and hopping matrix are *not* written: they are pure functions of the
    /// model, which the checkpoint header fingerprints separately.
    pub fn encode(&self, w: &mut util::codec::ByteWriter) {
        self.sign.encode(w);
        self.density.encode(w);
        self.double_occ.encode(w);
        self.kinetic.encode(w);
        self.potential.encode(w);
        self.saf.encode(w);
        crate::checkpoint::write_matrix(w, &self.czz_sum);
        crate::checkpoint::write_matrix(w, &self.dm_corr_sum);
        crate::checkpoint::write_matrix(w, &self.pair_sum);
        w.put_f64(self.weight);
        w.put_u64(self.count as u64);
    }

    /// Deserializes observables written by [`Observables::encode`],
    /// rebuilding the lattice-derived members from `model`. Lattice-resolved
    /// sums whose dimensions do not match the model decode to
    /// [`util::codec::CodecError::Invalid`].
    pub fn decode(
        model: &ModelParams,
        r: &mut util::codec::ByteReader<'_>,
    ) -> Result<Self, util::codec::CodecError> {
        let lat = model.lattice.clone();
        let hop = lat.kinetic_matrix(0.0);
        let sign = BinnedAccumulator::decode(r)?;
        let density = BinnedAccumulator::decode(r)?;
        let double_occ = BinnedAccumulator::decode(r)?;
        let kinetic = BinnedAccumulator::decode(r)?;
        let potential = BinnedAccumulator::decode(r)?;
        let saf = BinnedAccumulator::decode(r)?;
        let czz_sum = crate::checkpoint::read_matrix(r)?;
        let dm_corr_sum = crate::checkpoint::read_matrix(r)?;
        let pair_sum = crate::checkpoint::read_matrix(r)?;
        for (name, m) in [
            ("czz_sum", &czz_sum),
            ("dm_corr_sum", &dm_corr_sum),
            ("pair_sum", &pair_sum),
        ] {
            if m.nrows() != lat.lx() || m.ncols() != lat.ly() {
                return Err(util::codec::CodecError::Invalid(format!(
                    "{name} is {}x{}, lattice is {}x{}",
                    m.nrows(),
                    m.ncols(),
                    lat.lx(),
                    lat.ly()
                )));
            }
        }
        let weight = r.get_f64()?;
        let count = r.get_u64()? as usize;
        Ok(Observables {
            lat,
            hop,
            sign,
            density,
            double_occ,
            kinetic,
            potential,
            saf,
            czz_sum,
            dm_corr_sum,
            pair_sum,
            weight,
            count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hubbard::ModelParams;

    fn model(lx: usize, ly: usize) -> ModelParams {
        ModelParams::new(Lattice::square(lx, ly, 1.0), 0.0, 0.0, 0.125, 8)
    }

    /// Free-fermion Green's function at inverse temperature β for the model:
    /// G = (I + e^{−βK})⁻¹ — exact at U = 0.
    fn free_greens(m: &ModelParams) -> Matrix {
        let k = m.lattice.kinetic_matrix(m.mu_tilde);
        let e = linalg::sym_expm(&k, -m.beta()).unwrap();
        let mut mm = Matrix::identity(m.nsites());
        mm.axpy(1.0, &e);
        linalg::lu::inverse(&mm).unwrap()
    }

    #[test]
    fn half_filling_density_is_one() {
        let m = model(4, 4);
        let g = free_greens(&m);
        let mut obs = Observables::new(&m, 1);
        obs.record(m.u, &g, &g, 1.0);
        let (rho, _) = obs.density();
        assert!((rho - 1.0).abs() < 1e-12, "rho = {rho}");
    }

    #[test]
    fn free_fermion_momentum_distribution_is_fermi_factor() {
        let m = model(4, 4);
        let g = free_greens(&m);
        let mut obs = Observables::new(&m, 1);
        obs.record(m.u, &g, &g, 1.0);
        let nk = obs.momentum_distribution();
        for (idx, (kx, ky)) in m.lattice.kpoints().iter().enumerate() {
            let eps = -2.0 * (kx.cos() + ky.cos());
            let fermi = 1.0 / (1.0 + (m.beta() * eps).exp());
            let nx = idx % 4;
            let ny = idx / 4;
            assert!(
                (nk[(nx, ny)] - fermi).abs() < 1e-10,
                "k=({kx},{ky}): {} vs {fermi}",
                nk[(nx, ny)]
            );
        }
    }

    #[test]
    fn free_fermion_energy_matches_band_sum() {
        let m = model(4, 4);
        let g = free_greens(&m);
        let mut obs = Observables::new(&m, 1);
        obs.record(m.u, &g, &g, 1.0);
        let (ekin, _) = obs.kinetic_energy();
        // Band sum: (2/N) Σ_k ε_k f(ε_k), factor 2 for spin.
        let mut expect = 0.0;
        for (kx, ky) in m.lattice.kpoints() {
            let eps = -2.0 * (kx.cos() + ky.cos());
            expect += 2.0 * eps / (1.0 + (m.beta() * eps).exp());
        }
        expect /= m.nsites() as f64;
        assert!((ekin - expect).abs() < 1e-10, "{ekin} vs {expect}");
    }

    #[test]
    fn uncorrelated_czz_zero_distance_sum_rule() {
        // For independent spins: C_zz(0) = ρ − 2⟨n₊⟩⟨n₋⟩ (per config the
        // double occupancy factorises).
        let m = model(4, 4);
        let g = free_greens(&m);
        let mut obs = Observables::new(&m, 1);
        obs.record(m.u, &g, &g, 1.0);
        let czz = obs.czz();
        let (rho, _) = obs.density();
        let (docc, _) = obs.double_occupancy();
        let expect = rho - 2.0 * docc;
        assert!(
            (czz[(0, 0)] - expect).abs() < 1e-10,
            "{} vs {expect}",
            czz[(0, 0)]
        );
    }

    #[test]
    fn saf_matches_direct_staggered_sum() {
        let m = model(4, 4);
        let g = free_greens(&m);
        let mut obs = Observables::new(&m, 1);
        obs.record(m.u, &g, &g, 1.0);
        let czz = obs.czz();
        let mut expect = 0.0;
        for dy in 0..4 {
            for dx in 0..4 {
                let par = if (dx + dy) % 2 == 0 { 1.0 } else { -1.0 };
                expect += par * czz[(dx, dy)];
            }
        }
        let (saf, _) = obs.af_structure_factor();
        assert!((saf - expect).abs() < 1e-12);
    }

    #[test]
    fn sign_weighting_normalises() {
        // Two configurations with signs ±1 and equal-magnitude density must
        // produce a finite ratio v̄/s̄.
        let m = model(2, 2);
        let g = free_greens(&m);
        let mut obs = Observables::new(&m, 1);
        obs.record(m.u, &g, &g, 1.0);
        obs.record(m.u, &g, &g, 1.0);
        obs.record(m.u, &g, &g, -1.0);
        let (s, _) = obs.avg_sign();
        assert!((s - 1.0 / 3.0).abs() < 1e-12);
        let (rho, _) = obs.density();
        // Weighted: (1+1−1)·ρ₀ / (1+1−1) = ρ₀.
        assert!((rho - 1.0).abs() < 1e-10);
    }

    #[test]
    fn momentum_path_samples_grid() {
        let m = model(4, 4);
        let g = free_greens(&m);
        let mut obs = Observables::new(&m, 1);
        obs.record(m.u, &g, &g, 1.0);
        let path = obs.momentum_distribution_path();
        assert_eq!(path.len(), 7); // 3·(L/2)+1 for L=4
        let nk = obs.momentum_distribution();
        // Γ point value matches grid.
        assert!((path[0].1 - nk[(0, 0)]).abs() < 1e-14);
        // At β=1, Γ (ε=−4) is nearly filled.
        assert!(path[0].1 > 0.9);
    }

    #[test]
    fn free_fermion_pair_correlation_factorises() {
        // For U = 0 and equal spins: P_s(d) = G(b,a)² — check the on-site
        // value P_s(0) = G(r,r)² averaged, i.e. (1−ρ/2)².
        let m = model(4, 4);
        let g = free_greens(&m);
        let mut obs = Observables::new(&m, 1);
        obs.record(m.u, &g, &g, 1.0);
        let ps = obs.swave_pair();
        let expect: f64 = (0..16).map(|r| g[(r, r)] * g[(r, r)]).sum::<f64>() / 16.0;
        assert!((ps[(0, 0)] - expect).abs() < 1e-12);
        // Structure factor is a plain sum.
        let total: f64 = ps.as_slice().iter().sum();
        assert!((obs.swave_structure_factor() - total).abs() < 1e-12);
    }

    #[test]
    fn count_tracks_records() {
        let m = model(2, 2);
        let g = free_greens(&m);
        let mut obs = Observables::new(&m, 1);
        assert_eq!(obs.count(), 0);
        obs.record(m.u, &g, &g, 1.0);
        assert_eq!(obs.count(), 1);
    }
}
