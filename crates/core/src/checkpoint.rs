//! Versioned, checksummed checkpointing of the full DQMC state.
//!
//! A checkpoint captures everything needed to resume a run **bit-identically**:
//! the HS field, the RNG position, both Green's functions, the incremental
//! sign, the observable accumulators (equal-time and, when enabled,
//! time-dependent), the sweep counters, and the runtime recovery state
//! (adaptively shrunk cluster size, host-fallback flag, recovery-event
//! count). The cluster cache is *not* saved — its entries are pure functions
//! of `(params, h)` and rebuild on demand to the same bits.
//!
//! # File format (`DQCP` version 1)
//!
//! ```text
//! magic   [u8; 4] = b"DQCP"
//! version u32     = 1
//! length  u64     = payload byte count
//! payload [u8; length]
//! crc32   u32     over payload only
//! ```
//!
//! The CRC deliberately excludes the header: tampering with the version
//! field reports [`CodecError::BadVersion`], not a confusing checksum
//! failure. The length field must account for the file exactly
//! (`file_len == length + 20`), so truncation and trailing garbage are both
//! detected before any payload decoding starts.
//!
//! Writes are atomic: the bytes go to a sibling `<path>.tmp`, are fsynced,
//! and renamed over the destination — a kill mid-write can never leave a
//! half-written checkpoint at the published path.

use crate::hs::HsField;
use crate::hubbard::{Acceptance, SimParams};
use crate::measure::Observables;
use crate::sim::Simulation;
use crate::stratify::StratAlgo;
use crate::sweep::DqmcCore;
use crate::tdm::TimeDependentObs;
use linalg::Matrix;
use std::fmt;
use std::fs;
use std::path::Path;
use util::codec::{crc32, ByteReader, ByteWriter, CodecError, Fnv1a};
use util::Rng;
use util::RunningStats;

/// Leading magic bytes of every checkpoint file.
pub const MAGIC: [u8; 4] = *b"DQCP";

/// Format version this build reads and writes.
pub const VERSION: u32 = 1;

/// Header (magic + version + length) plus trailing CRC, in bytes.
const FRAME_OVERHEAD: usize = 4 + 4 + 8 + 4;

/// Why a checkpoint save or load failed.
#[derive(Debug)]
pub enum CheckpointError {
    /// The filesystem said no.
    Io(String),
    /// The bytes were malformed (truncated, corrupt, wrong version…).
    Codec(CodecError),
    /// The checkpoint was written by a run with different parameters.
    ParamsMismatch {
        /// Fingerprint of the parameters passed to [`load`].
        expected: u64,
        /// Fingerprint recorded in the file.
        found: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Codec(e) => write!(f, "checkpoint decode error: {e}"),
            CheckpointError::ParamsMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different run: fingerprint {found:#018x} \
                 does not match the configured parameters ({expected:#018x})"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<CodecError> for CheckpointError {
    fn from(e: CodecError) -> Self {
        CheckpointError::Codec(e)
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e.to_string())
    }
}

/// Writes a matrix as `u32` dims followed by its column-major `f64`s.
pub(crate) fn write_matrix(w: &mut ByteWriter, m: &Matrix) {
    w.put_u32(m.nrows() as u32);
    w.put_u32(m.ncols() as u32);
    for &v in m.as_slice() {
        w.put_f64(v);
    }
}

/// Reads a matrix written by [`write_matrix`]. The element count is
/// validated against the remaining bytes *before* allocating, so corrupt
/// dimensions cannot trigger an enormous allocation or a panic.
pub(crate) fn read_matrix(r: &mut ByteReader<'_>) -> Result<Matrix, CodecError> {
    let nrows = r.get_u32()? as usize;
    let ncols = r.get_u32()? as usize;
    let len = nrows
        .checked_mul(ncols)
        .ok_or_else(|| CodecError::Invalid("matrix dimensions overflow".into()))?;
    if len.checked_mul(8).is_none_or(|b| b > r.remaining()) {
        return Err(CodecError::Truncated {
            needed: len.saturating_mul(8),
            remaining: r.remaining(),
        });
    }
    let mut data = Vec::with_capacity(len);
    for _ in 0..len {
        data.push(r.get_f64()?);
    }
    Ok(Matrix::from_col_major(nrows, ncols, data))
}

/// FNV-1a digest over everything that defines the Markov chain: the model
/// (including the full kinetic matrix, so lattice geometry and hopping
/// amplitudes are covered), every algorithmic knob, and the seed. The
/// recovery *policy* is deliberately excluded — it never consumes the
/// Metropolis RNG stream, so resuming a checkpoint under a different policy
/// is sound.
pub fn params_fingerprint(p: &SimParams) -> u64 {
    let mut f = Fnv1a::new();
    f.update(b"dqmc-params-v1");
    f.update_u64(p.model.nsites() as u64);
    f.update_u64(p.model.slices as u64);
    f.update_f64(p.model.u);
    f.update_f64(p.model.mu_tilde);
    f.update_f64(p.model.dtau);
    let kin = p.model.lattice.kinetic_matrix(0.0);
    f.update_u64(kin.nrows() as u64);
    for &v in kin.as_slice() {
        f.update_f64(v);
    }
    f.update_u64(p.warmup_sweeps as u64);
    f.update_u64(p.measure_sweeps as u64);
    f.update_u64(p.cluster_size as u64);
    f.update_u64(p.delay_block as u64);
    f.update_u64(p.seed);
    f.update_u64(match p.algo {
        StratAlgo::Qrp => 0,
        StratAlgo::PrePivot => 1,
    });
    f.update_u64(p.recycle as u64);
    f.update_u64(p.bin_size as u64);
    f.update_u64(p.measure_unequal_time as u64);
    f.update_u64(p.checkerboard as u64);
    f.update_u64(p.measure_per_cluster as u64);
    f.update_u64(match p.acceptance {
        Acceptance::Metropolis => 0,
        Acceptance::HeatBath => 1,
    });
    f.finish()
}

/// Serializes the complete simulation state (payload only, no framing).
pub(crate) fn encode_payload(sim: &Simulation) -> Vec<u8> {
    let core = &sim.core;
    let mut w = ByteWriter::new();
    w.put_u64(params_fingerprint(&core.params));
    w.put_u64(sim.warmup_done as u64);
    w.put_u64(sim.measure_done as u64);
    w.put_u64(core.sweeps_run);
    w.put_u64(core.cache.cluster_size() as u64);
    w.put_u8(core.use_host_fallback as u8);
    w.put_u64(core.recovery.total());
    w.put_f64(core.sign);
    w.put_u64(core.accepted);
    w.put_u64(core.proposed);
    core.h.encode(&mut w);
    core.rng.encode(&mut w);
    write_matrix(&mut w, &core.g[0]);
    write_matrix(&mut w, &core.g[1]);
    core.wrap_diff.encode(&mut w);
    sim.obs.encode(&mut w);
    match &sim.tdm {
        Some(tdm) => {
            w.put_u8(1);
            tdm.encode(&mut w);
        }
        None => w.put_u8(0),
    }
    w.into_bytes()
}

/// Frames a payload into the on-disk byte layout.
pub(crate) fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

/// Validates framing and returns the payload slice.
pub(crate) fn unframe(bytes: &[u8]) -> Result<&[u8], CodecError> {
    if bytes.len() < FRAME_OVERHEAD {
        return Err(CodecError::Truncated {
            needed: FRAME_OVERHEAD,
            remaining: bytes.len(),
        });
    }
    if bytes[..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != VERSION {
        return Err(CodecError::BadVersion {
            found: version,
            expected: VERSION,
        });
    }
    let mut len8 = [0u8; 8];
    len8.copy_from_slice(&bytes[8..16]);
    let payload_len = u64::from_le_bytes(len8) as usize;
    if payload_len != bytes.len() - FRAME_OVERHEAD {
        return Err(CodecError::Truncated {
            needed: payload_len.saturating_add(FRAME_OVERHEAD),
            remaining: bytes.len(),
        });
    }
    let payload = &bytes[16..16 + payload_len];
    let mut crc4 = [0u8; 4];
    crc4.copy_from_slice(&bytes[16 + payload_len..]);
    let stored = u32::from_le_bytes(crc4);
    let computed = crc32(payload);
    if stored != computed {
        return Err(CodecError::BadChecksum { stored, computed });
    }
    Ok(payload)
}

/// Rebuilds a [`Simulation`] from a payload, validating it against `params`.
pub(crate) fn decode_payload(
    payload: &[u8],
    params: &SimParams,
) -> Result<Simulation, CheckpointError> {
    let mut r = ByteReader::new(payload);
    let found = r.get_u64()?;
    let expected = params_fingerprint(params);
    if found != expected {
        return Err(CheckpointError::ParamsMismatch { expected, found });
    }
    let warmup_done = r.get_u64()? as usize;
    let measure_done = r.get_u64()? as usize;
    let sweeps_run = r.get_u64()?;
    let cluster_size = r.get_u64()? as usize;
    if cluster_size < 1 || cluster_size > params.model.slices {
        return Err(CodecError::Invalid(format!(
            "runtime cluster size {cluster_size} outside 1..={}",
            params.model.slices
        ))
        .into());
    }
    let use_host_fallback = match r.get_u8()? {
        0 => false,
        1 => true,
        v => return Err(CodecError::Invalid(format!("host-fallback flag is {v}")).into()),
    };
    let recovery_prior = r.get_u64()?;
    let sign = r.get_f64()?;
    let accepted = r.get_u64()?;
    let proposed = r.get_u64()?;
    let h = HsField::decode(&mut r)?;
    if h.nsites() != params.model.nsites() || h.slices() != params.model.slices {
        return Err(CodecError::Invalid(format!(
            "HS field is {}x{}, model is {}x{}",
            h.slices(),
            h.nsites(),
            params.model.slices,
            params.model.nsites()
        ))
        .into());
    }
    let rng = Rng::decode(&mut r)?;
    let g_up = read_matrix(&mut r)?;
    let g_dn = read_matrix(&mut r)?;
    let n = params.model.nsites();
    for (name, g) in [("up", &g_up), ("down", &g_dn)] {
        if g.nrows() != n || g.ncols() != n {
            return Err(CodecError::Invalid(format!(
                "{name} Green's function is {}x{}, expected {n}x{n}",
                g.nrows(),
                g.ncols()
            ))
            .into());
        }
    }
    let wrap_diff = RunningStats::decode(&mut r)?;
    let obs = Observables::decode(&params.model, &mut r)?;
    let tdm = match r.get_u8()? {
        0 => None,
        1 => Some(TimeDependentObs::decode(&params.model.lattice, &mut r)?),
        v => return Err(CodecError::Invalid(format!("TDM presence flag is {v}")).into()),
    };
    if params.measure_unequal_time != tdm.is_some() {
        return Err(CodecError::Invalid(
            "time-dependent measurement flag disagrees with checkpoint contents".into(),
        )
        .into());
    }
    if !r.is_exhausted() {
        return Err(
            CodecError::Invalid(format!("{} trailing bytes after payload", r.remaining())).into(),
        );
    }
    let core = DqmcCore::restore(
        params.clone(),
        h,
        rng,
        [g_up, g_dn],
        sign,
        cluster_size,
        use_host_fallback,
        accepted,
        proposed,
        sweeps_run,
        wrap_diff,
        recovery_prior,
    );
    Ok(Simulation {
        core,
        obs,
        tdm,
        warmup_done,
        measure_done,
    })
}

/// Atomically writes a checkpoint of `sim` to `path` through the
/// workspace's single audited write path ([`util::vfs::write_atomic`]:
/// tmp file + fsync + rename + parent-directory fsync; a kill at any
/// point leaves either the old checkpoint or the new one, never a torn
/// file).
pub fn save(sim: &Simulation, path: &Path) -> Result<(), CheckpointError> {
    util::vfs::write_atomic(path, &to_bytes(sim))?;
    Ok(())
}

/// Loads a checkpoint from `path`, validating framing, checksum and the
/// parameter fingerprint against `params`, and rebuilds the simulation.
pub fn load(path: &Path, params: &SimParams) -> Result<Simulation, CheckpointError> {
    let bytes = fs::read(path)?;
    from_bytes(&bytes, params)
}

/// Serializes `sim` to an in-memory `DQCP` frame — byte-for-byte what
/// [`save`] would write to disk. Checkpoint-based preemption uses this: a
/// scheduler parks a job as a byte image and requeues it without touching
/// the filesystem, and because the image is the *same* format, a parked job
/// can equally be spilled to disk and survive a process kill.
pub fn to_bytes(sim: &Simulation) -> Vec<u8> {
    frame(&encode_payload(sim))
}

/// Rebuilds a simulation from a `DQCP` frame produced by [`to_bytes`] (or
/// read back from a checkpoint file), with the full framing, checksum and
/// parameter-fingerprint validation of [`load`].
pub fn from_bytes(bytes: &[u8], params: &SimParams) -> Result<Simulation, CheckpointError> {
    decode_payload(unframe(bytes)?, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hubbard::ModelParams;
    use lattice::Lattice;

    fn params(seed: u64) -> SimParams {
        let model = ModelParams::new(Lattice::square(2, 2, 1.0), 4.0, 0.0, 0.125, 8);
        SimParams::new(model)
            .with_sweeps(4, 8)
            .with_seed(seed)
            .with_cluster_size(4)
            .with_bin_size(2)
    }

    #[test]
    fn matrix_codec_round_trip_and_bounds() {
        let m = Matrix::from_fn(3, 2, |i, j| (i * 10 + j) as f64 - 0.5);
        let mut w = ByteWriter::new();
        write_matrix(&mut w, &m);
        let bytes = w.into_bytes();
        let got = read_matrix(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(got.max_abs_diff(&m), 0.0);
        // Corrupt dimensions promise more data than exists: clean error,
        // no giant allocation.
        let mut bad = bytes.clone();
        bad[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_matrix(&mut ByteReader::new(&bad)).is_err());
        // Every truncation errors cleanly.
        for cut in 0..bytes.len() {
            assert!(read_matrix(&mut ByteReader::new(&bytes[..cut])).is_err());
        }
    }

    #[test]
    fn frame_round_trip() {
        let payload = b"hello dqmc".to_vec();
        let framed = frame(&payload);
        assert_eq!(unframe(&framed).unwrap(), payload.as_slice());
    }

    #[test]
    fn unframe_rejects_tampering() {
        let framed = frame(b"payload");
        // Bad magic.
        let mut bad = framed.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(unframe(&bad), Err(CodecError::BadMagic)));
        // Version bump is reported as a version problem, not a checksum one.
        let mut bad = framed.clone();
        bad[4] = 99;
        assert!(matches!(
            unframe(&bad),
            Err(CodecError::BadVersion { found: 99, .. })
        ));
        // Any payload byte flip fails the CRC.
        let mut bad = framed.clone();
        bad[17] ^= 0x01;
        assert!(matches!(unframe(&bad), Err(CodecError::BadChecksum { .. })));
        // Truncations never panic.
        for cut in 0..framed.len() {
            assert!(unframe(&framed[..cut]).is_err());
        }
        // Trailing garbage is rejected by the length check.
        let mut long = framed.clone();
        long.push(0);
        assert!(unframe(&long).is_err());
    }

    #[test]
    fn fingerprint_sensitive_to_every_knob() {
        let base = params_fingerprint(&params(1));
        assert_ne!(base, params_fingerprint(&params(2)), "seed");
        assert_ne!(
            base,
            params_fingerprint(&params(1).with_cluster_size(2)),
            "cluster size"
        );
        assert_ne!(
            base,
            params_fingerprint(&params(1).with_algo(StratAlgo::Qrp)),
            "algorithm"
        );
        assert_ne!(
            base,
            params_fingerprint(&params(1).with_acceptance(Acceptance::HeatBath)),
            "acceptance rule"
        );
        // Same params twice: stable.
        assert_eq!(base, params_fingerprint(&params(1)));
    }

    #[test]
    fn save_load_round_trip_is_bit_identical() {
        let mut sim = Simulation::new(params(7));
        sim.warmup(2);
        let dir = std::env::temp_dir().join(format!("dqcp-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.dqcp");
        save(&sim, &path).unwrap();
        let restored = load(&path, &params(7)).unwrap();
        assert_eq!(restored.core.h, sim.core.h);
        assert_eq!(restored.core.rng.state(), sim.core.rng.state());
        assert_eq!(restored.core.g[0].max_abs_diff(&sim.core.g[0]), 0.0);
        assert_eq!(restored.core.g[1].max_abs_diff(&sim.core.g[1]), 0.0);
        assert_eq!(restored.core.sign, sim.core.sign);
        assert_eq!(restored.core.accepted, sim.core.accepted);
        assert_eq!(restored.sweeps_done(), sim.sweeps_done());
        // Wrong params: clean mismatch, not garbage state.
        assert!(matches!(
            load(&path, &params(8)),
            Err(CheckpointError::ParamsMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
