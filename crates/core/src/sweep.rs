//! The DQMC sweep engine — Algorithm 1 of the paper plus the stabilisation
//! machinery of §III.
//!
//! One sweep visits every element of the HS field once. For each time slice
//! `l` (with the current Green's functions valid for that slice, i.e. `B_l`
//! rightmost in the chain):
//!
//! 1. every site is visited; the Metropolis ratio `r = d₊d₋` with
//!    `d_σ = 1 + α_σ(1 − G_σ(i,i))` costs O(1) thanks to the delayed-update
//!    accumulators,
//! 2. accepted flips update both Green's functions by delayed rank-1 updates,
//! 3. the Green's functions are *wrapped* to the next slice,
//!    `G ← B_l G B_l⁻¹`, and every `k` slices they are instead *recomputed*
//!    from scratch by stratification over the (recycled) cluster products;
//!    the wrapped and recomputed matrices are compared to monitor accuracy.

use crate::bmat::BMatrixFactory;
use crate::greens::{self, greens_from_udt};
use crate::hs::HsField;
use crate::hubbard::{SimParams, Spin};
use crate::measure::Observables;
use crate::profile::phases;
use crate::recycle::ClusterCache;
use crate::stratify::stratify;
use crate::update::SliceUpdater;
use linalg::{workspace, Matrix};
use util::{PhaseTimer, Rng, RunningStats};

/// The complete mutable state of a DQMC run.
#[derive(Debug)]
pub struct DqmcCore {
    /// Configuration (immutable after construction).
    pub params: SimParams,
    /// B-matrix factory (holds `e^{∓ΔτK}`).
    pub fac: BMatrixFactory,
    /// Current HS field.
    pub h: HsField,
    /// Cluster product cache.
    pub cache: ClusterCache,
    /// Green's functions, `g[0]` = up, `g[1]` = down.
    pub g: [Matrix; 2],
    /// Sign of the configuration weight `det M₊ det M₋`, tracked
    /// incrementally and re-synchronised at every recomputation.
    pub sign: f64,
    /// Metropolis random stream.
    pub rng: Rng,
    /// Phase timer (Table I attribution).
    pub timer: PhaseTimer,
    /// Relative wrap-vs-recompute differences (accuracy monitor).
    pub wrap_diff: RunningStats,
    /// Accepted proposals.
    pub accepted: u64,
    /// Total proposals.
    pub proposed: u64,
}

impl DqmcCore {
    /// Initialises a run: random HS field from the seed, Green's functions
    /// from a full stratified evaluation.
    pub fn new(params: SimParams) -> Self {
        let fac = if params.checkerboard {
            BMatrixFactory::new_checkerboard(&params.model)
        } else {
            BMatrixFactory::new(&params.model)
        };
        let mut rng = Rng::new(params.seed);
        let n = params.model.nsites();
        let l = params.model.slices;
        let h = HsField::random(n, l, &mut rng);
        let cache = ClusterCache::new(l, params.cluster_size);
        let mut core = DqmcCore {
            params,
            fac,
            h,
            cache,
            g: [Matrix::zeros(n, n), Matrix::zeros(n, n)],
            sign: 1.0,
            rng,
            timer: PhaseTimer::new(),
            wrap_diff: RunningStats::new(),
            accepted: 0,
            proposed: 0,
        };
        core.recompute_greens(l - 1);
        core
    }

    /// Number of sites.
    pub fn nsites(&self) -> usize {
        self.params.model.nsites()
    }

    /// Acceptance rate so far.
    pub fn acceptance_rate(&self) -> f64 {
        if self.proposed == 0 {
            0.0
        } else {
            self.accepted as f64 / self.proposed as f64
        }
    }

    /// Green's function for a spin.
    pub fn greens(&self, spin: Spin) -> &Matrix {
        &self.g[spin.index()]
    }

    /// Recomputes both Green's functions from scratch for the position after
    /// wrapping past slice `l` (must be the last slice of its cluster), and
    /// re-synchronises the configuration sign from the determinants.
    pub fn recompute_greens(&mut self, l: usize) {
        let algo = self.params.algo;
        let mut sign = 1.0;
        for spin in Spin::BOTH {
            if !self.params.recycle {
                self.cache.invalidate_all();
            }
            let factors = self.timer.time(phases::CLUSTERING, || {
                self.cache.factors_after_slice(&self.fac, &self.h, l, spin)
            });
            let gf = self.timer.time(phases::STRATIFICATION, || {
                greens_from_udt(&stratify(&factors, algo))
            });
            sign *= gf.sign;
            self.g[spin.index()] = gf.g;
        }
        self.sign = sign;
    }

    /// Runs one full sweep (all `L·N` proposals); records measurements into
    /// `obs` afterwards when provided.
    pub fn sweep(&mut self, mut obs: Option<&mut Observables>) {
        let l_slices = self.params.model.slices;
        let n = self.nsites();
        let nu = self.fac.nu();
        let nb = self.params.delay_block;
        let k = self.params.cluster_size;

        // Wrap targets live for the whole sweep: at non-boundary slices the
        // wrapped pair is swapped into `self.g` and the old G matrices become
        // the next slice's targets — no per-slice allocation.
        let mut wrapped = [workspace::take_matrix(n, n), workspace::take_matrix(n, n)];

        for l in 0..l_slices {
            // --- Metropolis site loop with delayed updates ---
            let t0 = std::time::Instant::now();
            let gup = std::mem::replace(&mut self.g[0], Matrix::zeros(0, 0));
            let gdn = std::mem::replace(&mut self.g[1], Matrix::zeros(0, 0));
            let mut up = SliceUpdater::new(gup, nb);
            let mut dn = SliceUpdater::new(gdn, nb);
            let mut any_accept = false;
            for i in 0..n {
                let hli = self.h.get(l, i);
                let alpha_up = (-2.0 * nu * hli).exp() - 1.0;
                let alpha_dn = (2.0 * nu * hli).exp() - 1.0;
                let d_up = 1.0 + alpha_up * (1.0 - up.gii(i));
                let d_dn = 1.0 + alpha_dn * (1.0 - dn.gii(i));
                let r = d_up * d_dn;
                self.proposed += 1;
                let p_accept = self.params.acceptance.probability(r.abs());
                if self.rng.next_f64() < p_accept {
                    self.h.flip(l, i);
                    up.accept(i, alpha_up, d_up);
                    dn.accept(i, alpha_dn, d_dn);
                    if r < 0.0 {
                        self.sign = -self.sign;
                    }
                    self.accepted += 1;
                    any_accept = true;
                }
            }
            self.g[0] = up.into_g();
            self.g[1] = dn.into_g();
            self.timer.add(phases::DELAYED_UPDATE, t0.elapsed());
            if any_accept {
                self.cache.invalidate_slice(l);
            }

            // --- Advance to the next slice: wrap, and recompute at cluster
            //     boundaries (monitoring the wrap error there) ---
            let at_boundary = (l + 1) % k == 0 || l + 1 == l_slices;
            self.timer.time(phases::WRAPPING, || {
                self.fac
                    .wrap_into(&self.h, l, Spin::Up, &self.g[0], &mut wrapped[0]);
                self.fac
                    .wrap_into(&self.h, l, Spin::Down, &self.g[1], &mut wrapped[1]);
            });
            if at_boundary {
                let incr_sign = self.sign;
                self.recompute_greens(l);
                let diff = greens::relative_difference(&wrapped[0], &self.g[0]);
                self.wrap_diff.push(diff);
                debug_assert_eq!(
                    incr_sign, self.sign,
                    "incremental sign diverged from determinant sign"
                );
                // Mid-sweep measurement: equal-time observables are
                // τ-translation invariant, so the freshly recomputed G at
                // this boundary is as good a sample as the sweep-end one.
                if self.params.measure_per_cluster && l + 1 != l_slices {
                    if let Some(obs) = obs.as_deref_mut() {
                        let (gup, gdn, sign, u) =
                            (&self.g[0], &self.g[1], self.sign, self.params.model.u);
                        self.timer
                            .time(phases::MEASUREMENT, || obs.record(u, gup, gdn, sign));
                    }
                }
            } else {
                std::mem::swap(&mut self.g[0], &mut wrapped[0]);
                std::mem::swap(&mut self.g[1], &mut wrapped[1]);
            }
        }

        let [w0, w1] = wrapped;
        workspace::put_matrix(w0);
        workspace::put_matrix(w1);

        if let Some(obs) = obs {
            let (gup, gdn, sign, u) = (&self.g[0], &self.g[1], self.sign, self.params.model.u);
            self.timer
                .time(phases::MEASUREMENT, || obs.record(u, gup, gdn, sign));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hubbard::ModelParams;
    use crate::stratify::StratAlgo;
    use lattice::Lattice;

    fn small_params(u: f64, l: usize, seed: u64) -> SimParams {
        let model = ModelParams::new(Lattice::square(2, 2, 1.0), u, 0.0, 0.125, l);
        SimParams::new(model)
            .with_seed(seed)
            .with_cluster_size(4)
            .with_delay_block(3)
    }

    #[test]
    fn initial_greens_match_naive() {
        let mut core = DqmcCore::new(small_params(4.0, 8, 1));
        for spin in Spin::BOTH {
            let naive = greens::greens_naive(&core.fac, &core.h, spin);
            let diff = greens::relative_difference(core.greens(spin), &naive.g);
            assert!(diff < 1e-10, "{spin:?}: {diff}");
        }
        let _ = &mut core;
    }

    #[test]
    fn sweep_preserves_greens_consistency() {
        // After a sweep, the stored G must equal a from-scratch evaluation
        // for the final field configuration.
        let mut core = DqmcCore::new(small_params(4.0, 8, 2));
        core.sweep(None);
        for spin in Spin::BOTH {
            let naive = greens::greens_naive(&core.fac, &core.h, spin);
            let diff = greens::relative_difference(core.greens(spin), &naive.g);
            assert!(diff < 1e-8, "{spin:?}: {diff}");
        }
    }

    #[test]
    fn sign_is_positive_at_half_filling() {
        let mut core = DqmcCore::new(small_params(6.0, 8, 3));
        for _ in 0..5 {
            core.sweep(None);
            assert_eq!(core.sign, 1.0, "half filling must be sign-free");
        }
    }

    #[test]
    fn wrap_error_is_monitored_and_small() {
        let mut core = DqmcCore::new(small_params(4.0, 8, 4));
        core.sweep(None);
        assert!(core.wrap_diff.count() > 0);
        assert!(
            core.wrap_diff.max() < 1e-6,
            "wrap error too large: {}",
            core.wrap_diff.max()
        );
    }

    #[test]
    fn acceptance_rate_reasonable() {
        let mut core = DqmcCore::new(small_params(4.0, 8, 5));
        for _ in 0..5 {
            core.sweep(None);
        }
        let rate = core.acceptance_rate();
        assert!(rate > 0.05 && rate < 0.99, "acceptance rate {rate}");
        assert_eq!(core.proposed, 5 * 8 * 4);
    }

    #[test]
    fn deterministic_by_seed() {
        let run = |seed| {
            let mut core = DqmcCore::new(small_params(4.0, 8, seed));
            for _ in 0..3 {
                core.sweep(None);
            }
            (core.h.clone(), core.greens(Spin::Up).clone(), core.accepted)
        };
        let (h1, g1, a1) = run(7);
        let (h2, g2, a2) = run(7);
        assert_eq!(h1, h2);
        assert_eq!(a1, a2);
        assert!(g1.max_abs_diff(&g2) == 0.0);
        let (h3, _, _) = run(8);
        assert!(h3 != h1, "different seeds should diverge");
    }

    #[test]
    fn algorithms_produce_identical_markov_chains() {
        // Algorithms 2 and 3 differ by ~1e-12 in G; with the same random
        // stream the accept/reject decisions should coincide for short runs,
        // making the *field trajectories* identical.
        let run = |algo| {
            let mut core = DqmcCore::new(small_params(4.0, 8, 11).with_algo(algo));
            for _ in 0..3 {
                core.sweep(None);
            }
            core.h.clone()
        };
        assert_eq!(run(StratAlgo::Qrp), run(StratAlgo::PrePivot));
    }

    #[test]
    fn recycling_gives_same_results() {
        let run = |recycle| {
            let mut core = DqmcCore::new(small_params(4.0, 8, 13).with_recycle(recycle));
            for _ in 0..3 {
                core.sweep(None);
            }
            (core.h.clone(), core.greens(Spin::Down).clone())
        };
        let (h1, g1) = run(true);
        let (h2, g2) = run(false);
        assert_eq!(h1, h2);
        assert!(g1.max_abs_diff(&g2) < 1e-12);
    }

    #[test]
    fn delay_block_size_does_not_change_physics() {
        let run = |nb| {
            let mut core = DqmcCore::new(small_params(4.0, 8, 17).with_delay_block(nb));
            for _ in 0..3 {
                core.sweep(None);
            }
            core.h.clone()
        };
        let h1 = run(1);
        let h2 = run(4);
        let h3 = run(64);
        assert_eq!(h1, h2);
        assert_eq!(h2, h3);
    }

    #[test]
    fn timer_covers_all_phases() {
        let mut core = DqmcCore::new(small_params(4.0, 8, 19));
        let model = core.params.model.clone();
        let mut obs = Observables::new(&model, 1);
        core.sweep(Some(&mut obs));
        for p in [
            phases::DELAYED_UPDATE,
            phases::STRATIFICATION,
            phases::CLUSTERING,
            phases::WRAPPING,
            phases::MEASUREMENT,
        ] {
            assert!(
                core.timer.get(p) > std::time::Duration::ZERO,
                "phase {p} untimed"
            );
        }
    }

    #[test]
    fn u_zero_never_rejects() {
        // At U = 0, ν = 0, α = 0, r = 1: every proposal accepted, G never
        // changes, sign stays +1.
        let mut core = DqmcCore::new(small_params(0.0, 4, 23));
        let g0 = core.greens(Spin::Up).clone();
        core.sweep(None);
        assert_eq!(core.accepted, core.proposed);
        assert!(core.greens(Spin::Up).max_abs_diff(&g0) < 1e-9);
        assert_eq!(core.sign, 1.0);
    }
}
