//! The DQMC sweep engine — Algorithm 1 of the paper plus the stabilisation
//! machinery of §III.
//!
//! One sweep visits every element of the HS field once. For each time slice
//! `l` (with the current Green's functions valid for that slice, i.e. `B_l`
//! rightmost in the chain):
//!
//! 1. every site is visited; the Metropolis ratio `r = d₊d₋` with
//!    `d_σ = 1 + α_σ(1 − G_σ(i,i))` costs O(1) thanks to the delayed-update
//!    accumulators,
//! 2. accepted flips update both Green's functions by delayed rank-1 updates,
//! 3. the Green's functions are *wrapped* to the next slice,
//!    `G ← B_l G B_l⁻¹`, and every `k` slices they are instead *recomputed*
//!    from scratch by stratification over the (recycled) cluster products;
//!    the wrapped and recomputed matrices are compared to monitor accuracy.
//!
//! # Fault tolerance
//!
//! The heavy kernels (clustering, wrapping) run through a pluggable
//! [`ComputeBackend`], which may fail. Failures feed a bounded escalation
//! ladder governed by [`RecoveryPolicy`](crate::recovery::RecoveryPolicy):
//! **retry** (after telling the backend to drop resident device state), then
//! for device-class faults **host fallback**, and for taint-class faults a
//! **cluster-size shrink** (each step divides `k` by its smallest prime
//! factor, so every old cluster boundary stays a boundary and the recompute
//! cadence is preserved mid-sweep). A non-finite Green's function is
//! **repaired** by rebuilding it from the HS field, which is always clean.
//! Every action lands in the [`RecoveryLog`]; none of them consumes the
//! Metropolis RNG stream, so a fault-free run is unchanged bit for bit.

use crate::backend::{BackendFault, ComputeBackend, FaultKind, HostBackend};
use crate::bmat::BMatrixFactory;
use crate::greens::{self, greens_from_udt};
use crate::hs::HsField;
use crate::hubbard::{SimParams, Spin};
use crate::measure::Observables;
use crate::profile::phases;
use crate::recovery::{
    shrink_cluster_size, RecoveryAction, RecoveryCause, RecoveryEvent, RecoveryLog,
};
use crate::recycle::ClusterCache;
use crate::stratify::stratify;
use crate::update::SliceUpdater;
use linalg::check::first_non_finite;
use linalg::{workspace, Matrix};
use util::{DqmcError, PhaseTimer, Rng, RunningStats};

/// The complete mutable state of a DQMC run.
#[derive(Debug)]
pub struct DqmcCore {
    /// Configuration (immutable after construction).
    pub params: SimParams,
    /// B-matrix factory (holds `e^{∓ΔτK}`).
    pub fac: BMatrixFactory,
    /// Current HS field.
    pub h: HsField,
    /// Cluster product cache.
    pub cache: ClusterCache,
    /// Green's functions, `g[0]` = up, `g[1]` = down.
    pub g: [Matrix; 2],
    /// Sign of the configuration weight `det M₊ det M₋`, tracked
    /// incrementally and re-synchronised at every recomputation.
    pub sign: f64,
    /// Metropolis random stream.
    pub rng: Rng,
    /// Phase timer (Table I attribution).
    pub timer: PhaseTimer,
    /// Relative wrap-vs-recompute differences (accuracy monitor).
    pub wrap_diff: RunningStats,
    /// Accepted proposals.
    pub accepted: u64,
    /// Total proposals.
    pub proposed: u64,
    /// Active compute backend for clustering and wrapping.
    pub(crate) backend: Box<dyn ComputeBackend>,
    /// The always-available host path, used directly once
    /// `use_host_fallback` is set.
    pub(crate) host_backend: HostBackend,
    /// True once recovery has permanently abandoned the device backend.
    pub(crate) use_host_fallback: bool,
    /// Recovery incident log.
    pub(crate) recovery: RecoveryLog,
    /// Consecutive failures within the current incident (reset on success).
    pub(crate) fault_streak: u32,
    /// Total sweeps executed (warmup + measurement), for event attribution
    /// and checkpointing.
    pub(crate) sweeps_run: u64,
}

impl DqmcCore {
    /// Initialises a run: random HS field from the seed, Green's functions
    /// from a full stratified evaluation.
    pub fn new(params: SimParams) -> Self {
        let fac = if params.checkerboard {
            BMatrixFactory::new_checkerboard(&params.model)
        } else {
            BMatrixFactory::new(&params.model)
        };
        let mut rng = Rng::new(params.seed);
        let n = params.model.nsites();
        let l = params.model.slices;
        let h = HsField::random(n, l, &mut rng);
        let cache = ClusterCache::new(l, params.cluster_size);
        let mut core = DqmcCore {
            params,
            fac,
            h,
            cache,
            g: [Matrix::zeros(n, n), Matrix::zeros(n, n)],
            sign: 1.0,
            rng,
            timer: PhaseTimer::new(),
            wrap_diff: RunningStats::new(),
            accepted: 0,
            proposed: 0,
            backend: Box::new(HostBackend),
            host_backend: HostBackend,
            use_host_fallback: false,
            recovery: RecoveryLog::new(),
            fault_streak: 0,
            sweeps_run: 0,
        };
        core.recompute_greens(l - 1);
        core
    }

    /// Rebuilds a core from checkpointed state: no field randomisation, no
    /// initial Green's function evaluation — every dynamical quantity comes
    /// from the checkpoint so the resumed chain is bit-identical.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn restore(
        params: SimParams,
        h: HsField,
        rng: Rng,
        g: [Matrix; 2],
        sign: f64,
        runtime_cluster_size: usize,
        use_host_fallback: bool,
        accepted: u64,
        proposed: u64,
        sweeps_run: u64,
        wrap_diff: RunningStats,
        recovery_prior: u64,
    ) -> Self {
        let fac = if params.checkerboard {
            BMatrixFactory::new_checkerboard(&params.model)
        } else {
            BMatrixFactory::new(&params.model)
        };
        let cache = ClusterCache::new(params.model.slices, runtime_cluster_size);
        let mut recovery = RecoveryLog::new();
        recovery.set_prior(recovery_prior);
        DqmcCore {
            params,
            fac,
            h,
            cache,
            g,
            sign,
            rng,
            timer: PhaseTimer::new(),
            wrap_diff,
            accepted,
            proposed,
            backend: Box::new(HostBackend),
            host_backend: HostBackend,
            use_host_fallback,
            recovery,
            fault_streak: 0,
            sweeps_run,
        }
    }

    /// Number of sites.
    pub fn nsites(&self) -> usize {
        self.params.model.nsites()
    }

    /// Acceptance rate so far.
    pub fn acceptance_rate(&self) -> f64 {
        if self.proposed == 0 {
            0.0
        } else {
            self.accepted as f64 / self.proposed as f64
        }
    }

    /// Green's function for a spin.
    pub fn greens(&self, spin: Spin) -> &Matrix {
        &self.g[spin.index()]
    }

    /// Installs a compute backend for clustering and wrapping. The host
    /// fallback flag is left untouched: a core restored from a checkpoint
    /// that had already abandoned its device stays on the host path.
    pub fn set_backend(&mut self, backend: Box<dyn ComputeBackend>) {
        self.backend = backend;
    }

    /// Name of the backend actually in use (accounts for host fallback).
    pub fn active_backend_name(&self) -> &str {
        if self.use_host_fallback {
            self.host_backend.name()
        } else {
            self.backend.name()
        }
    }

    /// The recovery incident log.
    pub fn recovery_log(&self) -> &RecoveryLog {
        &self.recovery
    }

    /// The cluster size currently in effect (may be smaller than the
    /// configured one after adaptive shrinking).
    pub fn runtime_cluster_size(&self) -> usize {
        self.cache.cluster_size()
    }

    /// Injects a value into a Green's function (fault drills and tests):
    /// sets `G_σ(i, j) = v`.
    pub fn poison_greens(&mut self, spin: Spin, i: usize, j: usize, v: f64) {
        self.g[spin.index()][(i, j)] = v;
    }

    fn active_backend(&mut self) -> &mut dyn ComputeBackend {
        if self.use_host_fallback {
            &mut self.host_backend
        } else {
            self.backend.as_mut()
        }
    }

    /// Recomputes both Green's functions from scratch for the position after
    /// wrapping past slice `l` (must be the last slice of its cluster), and
    /// re-synchronises the configuration sign from the determinants.
    ///
    /// Infallible wrapper over [`Self::recompute_greens_recovering`] for
    /// callers without an error channel: a classified failure (sick device,
    /// exhausted ladder, recovery disabled) becomes a panic whose message is
    /// the error's `Display` — the original detail survives verbatim.
    pub fn recompute_greens(&mut self, l: usize) {
        if let Err(e) = self.recompute_greens_recovering(l) {
            panic!("{e}");
        }
    }

    /// Recomputes both Green's functions through the recovery ladder,
    /// surfacing classified failures instead of panicking. Sick-device
    /// faults escape on the first occurrence; everything else loops through
    /// the ladder until an attempt succeeds or the rungs are exhausted.
    pub fn recompute_greens_recovering(&mut self, l: usize) -> Result<(), DqmcError> {
        loop {
            match self.try_recompute_greens(l) {
                Ok(()) => {
                    self.fault_streak = 0;
                    return Ok(());
                }
                Err(fault) => self.escalate(fault, l)?,
            }
        }
    }

    /// One attempt at the full stratified evaluation through the active
    /// backend. On success `self.g` and `self.sign` are updated; on fault
    /// they are untouched.
    fn try_recompute_greens(&mut self, l: usize) -> Result<(), BackendFault> {
        let algo = self.params.algo;
        let mut sign = 1.0;
        let mut gs: [Option<Matrix>; 2] = [None, None];
        for spin in Spin::BOTH {
            if !self.params.recycle {
                self.cache.invalidate_all();
            }
            let backend: &mut dyn ComputeBackend = if self.use_host_fallback {
                &mut self.host_backend
            } else {
                self.backend.as_mut()
            };
            let factors = self.timer.time(phases::CLUSTERING, || {
                self.cache
                    .factors_with(backend, &self.fac, &self.h, l, spin)
            })?;
            let gf = self.timer.time(phases::STRATIFICATION, || {
                greens_from_udt(&stratify(&factors, algo))
            });
            if let Some((idx, v)) = first_non_finite(gf.g.as_slice()) {
                return Err(BackendFault::taint(format!(
                    "stratified G for {spin:?} has {v} at element {idx}"
                )));
            }
            sign *= gf.sign;
            gs[spin.index()] = Some(gf.g);
        }
        let [up, dn] = gs;
        self.g[0] = up.expect("both spins evaluated");
        self.g[1] = dn.expect("both spins evaluated");
        self.sign = sign;
        Ok(())
    }

    /// Declares a sick-device fault: logs the escalation and hands the
    /// classified error to the caller. The in-core ladder never absorbs
    /// these — the device, not the computation, is suspect, so retrying or
    /// shrinking here would grind against a failing part while the
    /// scheduler (which owns placement) is the layer that can actually fix
    /// it: park the job, exclude the slot, feed the pool's breaker.
    pub(crate) fn escalate_sick(
        &mut self,
        origin: &'static str,
        fault: &BackendFault,
        slice: usize,
    ) -> DqmcError {
        self.push_event(
            slice,
            RecoveryCause::Sick(fault.detail.clone()),
            RecoveryAction::Escalated,
        );
        DqmcError::device_sick(origin, fault.to_string(), fault.kind == FaultKind::Wedged)
    }

    /// The escalation ladder, invoked after a failed attempt. Each call
    /// either arranges a changed retry (notifying the backend, falling back
    /// to the host, or shrinking the cluster size) and returns `Ok`, or
    /// returns a classified [`DqmcError`]: sick-device faults escape
    /// immediately without consuming a rung, recovery-disabled and
    /// rungs-exhausted faults come back `Fatal`. Termination: retries are
    /// bounded by the policy, host fallback can fire at most once, and each
    /// shrink strictly decreases the cluster size.
    fn escalate(&mut self, fault: BackendFault, slice: usize) -> Result<(), DqmcError> {
        if fault.is_sick() {
            return Err(self.escalate_sick("sweep", &fault, slice));
        }
        let policy = self.params.recovery.clone();
        if !policy.enabled {
            return Err(DqmcError::fatal(
                "sweep",
                format!("backend fault with recovery disabled: {fault}"),
            ));
        }
        let cause = match fault.kind {
            FaultKind::Device => RecoveryCause::Device(fault.detail.clone()),
            FaultKind::Taint => RecoveryCause::NonFinite(fault.detail.clone()),
            FaultKind::Sick | FaultKind::Wedged => unreachable!("sick faults escalated above"),
        };
        self.fault_streak += 1;
        if self.fault_streak <= policy.max_retries {
            let attempt = self.fault_streak;
            self.active_backend().notify_fault();
            self.push_event(slice, cause, RecoveryAction::Retry { attempt });
            return Ok(());
        }
        // Retries exhausted: change something. Device faults prefer leaving
        // the device; taint faults prefer harder stabilisation.
        let can_fall_back = !self.use_host_fallback && policy.allow_host_fallback;
        let from = self.cache.cluster_size();
        let to = shrink_cluster_size(from);
        let can_shrink = to < from && to >= policy.min_cluster;
        let fallback_first = match fault.kind {
            FaultKind::Device => true,
            _ => !can_shrink,
        };
        if fallback_first && can_fall_back {
            self.use_host_fallback = true;
            self.fault_streak = 0;
            self.push_event(slice, cause, RecoveryAction::HostFallback);
            return Ok(());
        }
        if can_shrink {
            self.cache.reshape(to);
            self.fault_streak = 0;
            self.push_event(slice, cause, RecoveryAction::ClusterShrink { from, to });
            return Ok(());
        }
        if can_fall_back {
            self.use_host_fallback = true;
            self.fault_streak = 0;
            self.push_event(slice, cause, RecoveryAction::HostFallback);
            return Ok(());
        }
        Err(DqmcError::fatal(
            "sweep",
            format!("unrecoverable fault (all recovery rungs exhausted): {fault}"),
        ))
    }

    pub(crate) fn push_event(
        &mut self,
        slice: usize,
        cause: RecoveryCause,
        action: RecoveryAction,
    ) {
        self.recovery.push(RecoveryEvent {
            sweep: self.sweeps_run,
            slice,
            cause,
            action,
        });
    }

    /// Detects non-finite data in either Green's function (injected faults,
    /// inherited corruption) and repairs it by recomputing from the HS
    /// field at the canonical sweep-start position. The repair consumes no
    /// Metropolis randomness and reproduces exactly the matrix an untainted
    /// run holds at sweep start, so the repaired chain is bit-identical.
    pub(crate) fn repair_if_tainted(&mut self) -> Result<(), DqmcError> {
        let taint = first_non_finite(self.g[0].as_slice())
            .map(|(i, v)| (0usize, i, v))
            .or_else(|| first_non_finite(self.g[1].as_slice()).map(|(i, v)| (1usize, i, v)));
        let Some((s, idx, v)) = taint else {
            return Ok(());
        };
        if !self.params.recovery.enabled {
            return Err(DqmcError::fatal(
                "sweep",
                format!("G[{s}] tainted at element {idx} ({v}) with recovery disabled"),
            ));
        }
        self.push_event(
            0,
            RecoveryCause::NonFinite(format!("G[{s}] element {idx} is {v} at sweep start")),
            RecoveryAction::TaintRepair,
        );
        self.recompute_greens_recovering(self.params.model.slices - 1)
    }

    /// One timed attempt at wrapping both spins past slice `l`, scanning the
    /// results for non-finite contamination (device transfer corruption
    /// shows up here, since fallible backends do not self-check).
    fn try_wrap_pair(&mut self, l: usize, wrapped: &mut [Matrix; 2]) -> Result<(), BackendFault> {
        let t0 = std::time::Instant::now();
        let backend: &mut dyn ComputeBackend = if self.use_host_fallback {
            &mut self.host_backend
        } else {
            self.backend.as_mut()
        };
        let up = backend.wrap_into(&self.fac, &self.h, l, Spin::Up, &self.g[0], &mut wrapped[0]);
        let dn = match up {
            Ok(()) => backend.wrap_into(
                &self.fac,
                &self.h,
                l,
                Spin::Down,
                &self.g[1],
                &mut wrapped[1],
            ),
            Err(_) => Ok(()),
        };
        self.timer.add(phases::WRAPPING, t0.elapsed());
        up?;
        dn?;
        for (i, w) in wrapped.iter().enumerate() {
            if let Some((idx, v)) = first_non_finite(w.as_slice()) {
                return Err(BackendFault::taint(format!(
                    "wrapped G[{i}] has {v} at element {idx} after slice {l}"
                )));
            }
        }
        Ok(())
    }

    /// Wraps both Green's functions past slice `l` with recovery. Returns
    /// `Ok(true)` when `wrapped` holds valid wrapped matrices. Returns
    /// `Ok(false)` after a taint repair: at a cluster boundary the imminent
    /// recompute makes the wrap redundant, and mid-sweep `self.g` has been
    /// rebuilt for the post-wrap position directly from the HS field. A
    /// classified failure (sick device, recovery disabled, device fault with
    /// no rung left) surfaces as `Err`.
    fn wrap_with_recovery(
        &mut self,
        l: usize,
        at_boundary: bool,
        wrapped: &mut [Matrix; 2],
    ) -> Result<bool, DqmcError> {
        loop {
            match self.try_wrap_pair(l, wrapped) {
                Ok(()) => {
                    self.fault_streak = 0;
                    return Ok(true);
                }
                Err(fault) => {
                    if fault.is_sick() {
                        return Err(self.escalate_sick("wrap", &fault, l));
                    }
                    if !self.params.recovery.enabled {
                        return Err(DqmcError::fatal(
                            "wrap",
                            format!("wrap fault with recovery disabled: {fault}"),
                        ));
                    }
                    let cause = match fault.kind {
                        FaultKind::Device => RecoveryCause::Device(fault.detail.clone()),
                        FaultKind::Taint => RecoveryCause::NonFinite(fault.detail.clone()),
                        FaultKind::Sick | FaultKind::Wedged => {
                            unreachable!("sick faults escalated above")
                        }
                    };
                    self.fault_streak += 1;
                    if self.fault_streak <= self.params.recovery.max_retries {
                        let attempt = self.fault_streak;
                        self.active_backend().notify_fault();
                        self.push_event(l, cause, RecoveryAction::Retry { attempt });
                        continue;
                    }
                    match fault.kind {
                        FaultKind::Device => {
                            if !self.use_host_fallback && self.params.recovery.allow_host_fallback {
                                self.use_host_fallback = true;
                                self.fault_streak = 0;
                                self.push_event(l, cause, RecoveryAction::HostFallback);
                                continue;
                            }
                            return Err(DqmcError::transient(
                                "wrap",
                                format!("unrecoverable device fault during wrap: {fault}"),
                            ));
                        }
                        _ => {
                            // The source G was clean (scanned at sweep start
                            // and after every recompute), so the taint came
                            // from the wrap itself. Discard it and rebuild.
                            self.fault_streak = 0;
                            self.push_event(l, cause, RecoveryAction::TaintRepair);
                            if !at_boundary {
                                self.repair_greens_after(l);
                            }
                            return Ok(false);
                        }
                    }
                }
            }
        }
    }

    /// Rebuilds both Green's functions for the position after slice `l`
    /// directly from the HS field on the host path, using a temporary
    /// single-slice-cluster cache so *any* `l` is a valid boundary. Used for
    /// mid-sweep taint repair, where `l + 1` need not be a cluster boundary.
    pub(crate) fn repair_greens_after(&mut self, l: usize) {
        let algo = self.params.algo;
        let mut tmp = ClusterCache::new(self.params.model.slices, 1);
        let mut sign = 1.0;
        for spin in Spin::BOTH {
            let factors = self.timer.time(phases::CLUSTERING, || {
                tmp.factors_after_slice(&self.fac, &self.h, l, spin)
            });
            let gf = self.timer.time(phases::STRATIFICATION, || {
                greens_from_udt(&stratify(&factors, algo))
            });
            sign *= gf.sign;
            self.g[spin.index()] = gf.g;
        }
        self.sign = sign;
    }

    /// Handles a wrap-vs-recompute divergence beyond the policy tolerance:
    /// the cached cluster products are presumed silently corrupted (e.g. a
    /// device memory bit flip — finite, so the non-finite scans never
    /// fired). Drops every cached product, shrinks the cluster size when
    /// possible, and recomputes from the always-clean HS field.
    fn note_wrap_divergence(&mut self, l: usize, diff: f64) -> Result<(), DqmcError> {
        self.active_backend().notify_fault();
        self.cache.invalidate_all();
        let from = self.cache.cluster_size();
        let to = shrink_cluster_size(from);
        let action = if to < from && to >= self.params.recovery.min_cluster {
            self.cache.reshape(to);
            RecoveryAction::ClusterShrink { from, to }
        } else {
            RecoveryAction::TaintRepair
        };
        self.push_event(l, RecoveryCause::WrapDivergence { diff }, action);
        self.recompute_greens_recovering(l)
    }

    /// Runs one full sweep (all `L·N` proposals); records measurements into
    /// `obs` afterwards when provided.
    ///
    /// Infallible wrapper over [`Self::try_sweep`]: a classified failure
    /// becomes a panic whose message is the error's `Display`, so the
    /// original fault detail survives verbatim for `catch_unwind` backstops.
    pub fn sweep(&mut self, obs: Option<&mut Observables>) {
        if let Err(e) = self.try_sweep(obs) {
            panic!("{e}");
        }
    }

    /// Runs one full sweep, surfacing classified failures instead of
    /// panicking. On `Err` the core's dynamical state is mid-sweep and must
    /// not be measured; supervisors discard it and resume from the last
    /// checkpoint image (which is why the sweep consumes no Metropolis
    /// randomness on the recovery paths — the resumed chain is
    /// bit-identical).
    pub fn try_sweep(&mut self, mut obs: Option<&mut Observables>) -> Result<(), DqmcError> {
        self.sweeps_run += 1;
        let n = self.nsites();

        // Non-finite G here (an injected fault, or corruption inherited from
        // a previous phase) would poison every Metropolis ratio — and since
        // `f64::min(NaN, 1.0)` is 1.0, a NaN ratio *accepts everything*
        // rather than nothing. Scan up front and repair from the field; with
        // recovery disabled the scan still runs so the error names the taint
        // before any kernel consumes it.
        self.repair_if_tainted()?;

        // Wrap targets live for the whole sweep: at non-boundary slices the
        // wrapped pair is swapped into `self.g` and the old G matrices become
        // the next slice's targets — no per-slice allocation. On an abort the
        // pair still goes back to the workspace pool.
        let mut wrapped = [workspace::take_matrix(n, n), workspace::take_matrix(n, n)];
        let result = self.sweep_slices(&mut wrapped, &mut obs);
        let [w0, w1] = wrapped;
        workspace::put_matrix(w0);
        workspace::put_matrix(w1);
        result?;

        if let Some(obs) = obs {
            let (gup, gdn, sign, u) = (&self.g[0], &self.g[1], self.sign, self.params.model.u);
            self.timer
                .time(phases::MEASUREMENT, || obs.record(u, gup, gdn, sign));
        }
        Ok(())
    }

    /// The Metropolis site loop for one time slice: delayed rank-1 updates
    /// over every site, cache invalidation on any accepted flip. Shared
    /// verbatim by the solo sweep ([`Self::sweep_slices`]) and the crowd
    /// driver ([`crate::crowd::Crowd`]), so lockstep execution consumes the
    /// Metropolis stream identically to a solo run.
    pub(crate) fn metropolis_slice(&mut self, l: usize) {
        let n = self.nsites();
        let nu = self.fac.nu();
        let nb = self.params.delay_block;
        let t0 = std::time::Instant::now();
        let gup = std::mem::replace(&mut self.g[0], Matrix::zeros(0, 0));
        let gdn = std::mem::replace(&mut self.g[1], Matrix::zeros(0, 0));
        let mut up = SliceUpdater::new(gup, nb);
        let mut dn = SliceUpdater::new(gdn, nb);
        let mut any_accept = false;
        for i in 0..n {
            let hli = self.h.get(l, i);
            let alpha_up = (-2.0 * nu * hli).exp() - 1.0;
            let alpha_dn = (2.0 * nu * hli).exp() - 1.0;
            let d_up = 1.0 + alpha_up * (1.0 - up.gii(i));
            let d_dn = 1.0 + alpha_dn * (1.0 - dn.gii(i));
            let r = d_up * d_dn;
            self.proposed += 1;
            let p_accept = self.params.acceptance.probability(r.abs());
            if self.rng.next_f64() < p_accept {
                self.h.flip(l, i);
                up.accept(i, alpha_up, d_up);
                dn.accept(i, alpha_dn, d_dn);
                if r < 0.0 {
                    self.sign = -self.sign;
                }
                self.accepted += 1;
                any_accept = true;
            }
        }
        self.g[0] = up.into_g();
        self.g[1] = dn.into_g();
        self.timer.add(phases::DELAYED_UPDATE, t0.elapsed());
        if any_accept {
            self.cache.invalidate_slice(l);
        }
    }

    /// The cluster-boundary block after wrapping past slice `l`: recompute
    /// both Green's functions through the recovery ladder, monitor the
    /// wrap-vs-recompute divergence (when the wrap produced a valid pair)
    /// and take the optional mid-sweep measurement. Shared verbatim by the
    /// solo sweep and the crowd driver.
    pub(crate) fn boundary_recompute(
        &mut self,
        l: usize,
        wrap_ok: bool,
        wrapped: &mut [Matrix; 2],
        obs: &mut Option<&mut Observables>,
    ) -> Result<(), DqmcError> {
        let l_slices = self.params.model.slices;
        let incr_sign = self.sign;
        self.recompute_greens_recovering(l)?;
        if wrap_ok {
            let diff = greens::relative_difference(&wrapped[0], &self.g[0]);
            if self.params.recovery.enabled && diff > self.params.recovery.wrap_tolerance {
                self.note_wrap_divergence(l, diff)?;
            } else {
                self.wrap_diff.push(diff);
            }
        }
        debug_assert!(
            incr_sign == self.sign || !self.recovery.is_empty(),
            "incremental sign diverged from determinant sign"
        );
        // Mid-sweep measurement: equal-time observables are
        // τ-translation invariant, so the freshly recomputed G at
        // this boundary is as good a sample as the sweep-end one.
        if self.params.measure_per_cluster && l + 1 != l_slices {
            if let Some(obs) = obs.as_deref_mut() {
                let (gup, gdn, sign, u) = (&self.g[0], &self.g[1], self.sign, self.params.model.u);
                self.timer
                    .time(phases::MEASUREMENT, || obs.record(u, gup, gdn, sign));
            }
        }
        Ok(())
    }

    /// The slice loop of one sweep: Metropolis updates, wraps, boundary
    /// recomputes and mid-sweep measurements. Factored out of
    /// [`Self::try_sweep`] so the wrap workspace is returned to the pool on
    /// both the success and the abort path.
    fn sweep_slices(
        &mut self,
        wrapped: &mut [Matrix; 2],
        obs: &mut Option<&mut Observables>,
    ) -> Result<(), DqmcError> {
        let l_slices = self.params.model.slices;

        for l in 0..l_slices {
            // --- Metropolis site loop with delayed updates ---
            self.metropolis_slice(l);

            // --- Advance to the next slice: wrap, and recompute at cluster
            //     boundaries (monitoring the wrap error there). The cluster
            //     size comes from the cache, not the params: adaptive
            //     shrinking may change it mid-sweep, and because each shrink
            //     divides the old size, every boundary already passed under
            //     the old cadence stays a boundary under the new one ---
            let k = self.cache.cluster_size();
            let at_boundary = (l + 1) % k == 0 || l + 1 == l_slices;
            let wrap_ok = self.wrap_with_recovery(l, at_boundary, wrapped)?;
            if at_boundary {
                self.boundary_recompute(l, wrap_ok, wrapped, obs)?;
            } else if wrap_ok {
                std::mem::swap(&mut self.g[0], &mut wrapped[0]);
                std::mem::swap(&mut self.g[1], &mut wrapped[1]);
            }
            // wrap_ok == false mid-sweep: repair_greens_after already placed
            // clean post-wrap matrices in self.g.
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hubbard::ModelParams;
    use crate::recovery::RecoveryPolicy;
    use crate::stratify::StratAlgo;
    use lattice::Lattice;

    fn small_params(u: f64, l: usize, seed: u64) -> SimParams {
        let model = ModelParams::new(Lattice::square(2, 2, 1.0), u, 0.0, 0.125, l);
        SimParams::new(model)
            .with_seed(seed)
            .with_cluster_size(4)
            .with_delay_block(3)
    }

    #[test]
    fn initial_greens_match_naive() {
        let mut core = DqmcCore::new(small_params(4.0, 8, 1));
        for spin in Spin::BOTH {
            let naive = greens::greens_naive(&core.fac, &core.h, spin);
            let diff = greens::relative_difference(core.greens(spin), &naive.g);
            assert!(diff < 1e-10, "{spin:?}: {diff}");
        }
        let _ = &mut core;
    }

    #[test]
    fn sweep_preserves_greens_consistency() {
        // After a sweep, the stored G must equal a from-scratch evaluation
        // for the final field configuration.
        let mut core = DqmcCore::new(small_params(4.0, 8, 2));
        core.sweep(None);
        for spin in Spin::BOTH {
            let naive = greens::greens_naive(&core.fac, &core.h, spin);
            let diff = greens::relative_difference(core.greens(spin), &naive.g);
            assert!(diff < 1e-8, "{spin:?}: {diff}");
        }
    }

    #[test]
    fn sign_is_positive_at_half_filling() {
        let mut core = DqmcCore::new(small_params(6.0, 8, 3));
        for _ in 0..5 {
            core.sweep(None);
            assert_eq!(core.sign, 1.0, "half filling must be sign-free");
        }
    }

    #[test]
    fn wrap_error_is_monitored_and_small() {
        let mut core = DqmcCore::new(small_params(4.0, 8, 4));
        core.sweep(None);
        assert!(core.wrap_diff.count() > 0);
        assert!(
            core.wrap_diff.max() < 1e-6,
            "wrap error too large: {}",
            core.wrap_diff.max()
        );
    }

    #[test]
    fn acceptance_rate_reasonable() {
        let mut core = DqmcCore::new(small_params(4.0, 8, 5));
        for _ in 0..5 {
            core.sweep(None);
        }
        let rate = core.acceptance_rate();
        assert!(rate > 0.05 && rate < 0.99, "acceptance rate {rate}");
        assert_eq!(core.proposed, 5 * 8 * 4);
    }

    #[test]
    fn deterministic_by_seed() {
        let run = |seed| {
            let mut core = DqmcCore::new(small_params(4.0, 8, seed));
            for _ in 0..3 {
                core.sweep(None);
            }
            (core.h.clone(), core.greens(Spin::Up).clone(), core.accepted)
        };
        let (h1, g1, a1) = run(7);
        let (h2, g2, a2) = run(7);
        assert_eq!(h1, h2);
        assert_eq!(a1, a2);
        assert!(g1.max_abs_diff(&g2) == 0.0);
        let (h3, _, _) = run(8);
        assert!(h3 != h1, "different seeds should diverge");
    }

    #[test]
    fn algorithms_produce_identical_markov_chains() {
        // Algorithms 2 and 3 differ by ~1e-12 in G; with the same random
        // stream the accept/reject decisions should coincide for short runs,
        // making the *field trajectories* identical.
        let run = |algo| {
            let mut core = DqmcCore::new(small_params(4.0, 8, 11).with_algo(algo));
            for _ in 0..3 {
                core.sweep(None);
            }
            core.h.clone()
        };
        assert_eq!(run(StratAlgo::Qrp), run(StratAlgo::PrePivot));
    }

    #[test]
    fn recycling_gives_same_results() {
        let run = |recycle| {
            let mut core = DqmcCore::new(small_params(4.0, 8, 13).with_recycle(recycle));
            for _ in 0..3 {
                core.sweep(None);
            }
            (core.h.clone(), core.greens(Spin::Down).clone())
        };
        let (h1, g1) = run(true);
        let (h2, g2) = run(false);
        assert_eq!(h1, h2);
        assert!(g1.max_abs_diff(&g2) < 1e-12);
    }

    #[test]
    fn delay_block_size_does_not_change_physics() {
        let run = |nb| {
            let mut core = DqmcCore::new(small_params(4.0, 8, 17).with_delay_block(nb));
            for _ in 0..3 {
                core.sweep(None);
            }
            core.h.clone()
        };
        let h1 = run(1);
        let h2 = run(4);
        let h3 = run(64);
        assert_eq!(h1, h2);
        assert_eq!(h2, h3);
    }

    #[test]
    fn timer_covers_all_phases() {
        let mut core = DqmcCore::new(small_params(4.0, 8, 19));
        let model = core.params.model.clone();
        let mut obs = Observables::new(&model, 1);
        core.sweep(Some(&mut obs));
        for p in [
            phases::DELAYED_UPDATE,
            phases::STRATIFICATION,
            phases::CLUSTERING,
            phases::WRAPPING,
            phases::MEASUREMENT,
        ] {
            assert!(
                core.timer.get(p) > std::time::Duration::ZERO,
                "phase {p} untimed"
            );
        }
    }

    #[test]
    fn u_zero_never_rejects() {
        // At U = 0, ν = 0, α = 0, r = 1: every proposal accepted, G never
        // changes, sign stays +1.
        let mut core = DqmcCore::new(small_params(0.0, 4, 23));
        let g0 = core.greens(Spin::Up).clone();
        core.sweep(None);
        assert_eq!(core.accepted, core.proposed);
        assert!(core.greens(Spin::Up).max_abs_diff(&g0) < 1e-9);
        assert_eq!(core.sign, 1.0);
    }

    #[test]
    fn recovery_policy_does_not_perturb_clean_runs() {
        // The recovery machinery never consumes Metropolis randomness, so a
        // fault-free run is bit-identical whether recovery is on or off.
        let run = |policy: RecoveryPolicy| {
            let mut core = DqmcCore::new(small_params(4.0, 8, 29).with_recovery(policy));
            for _ in 0..3 {
                core.sweep(None);
            }
            (core.h.clone(), core.greens(Spin::Up).clone(), core.sign)
        };
        let (h1, g1, s1) = run(RecoveryPolicy::default());
        let (h2, g2, s2) = run(RecoveryPolicy::disabled());
        assert_eq!(h1, h2);
        assert_eq!(g1.max_abs_diff(&g2), 0.0);
        assert_eq!(s1, s2);
    }

    #[test]
    fn injected_nan_is_repaired_bit_identically() {
        // Poison G between sweeps; the sweep-start scan must rebuild it to
        // exactly the state an untainted run holds, leaving the trajectory
        // bit-identical.
        let mut clean = DqmcCore::new(small_params(4.0, 8, 31));
        let mut faulty = DqmcCore::new(small_params(4.0, 8, 31));
        clean.sweep(None);
        faulty.sweep(None);
        faulty.poison_greens(Spin::Up, 1, 2, f64::NAN);
        faulty.poison_greens(Spin::Down, 0, 0, f64::INFINITY);
        for _ in 0..2 {
            clean.sweep(None);
            faulty.sweep(None);
        }
        assert!(!faulty.recovery_log().is_empty());
        assert_eq!(clean.h, faulty.h);
        assert_eq!(clean.rng.state(), faulty.rng.state());
        assert_eq!(clean.g[0].max_abs_diff(&faulty.g[0]), 0.0);
        assert_eq!(clean.g[1].max_abs_diff(&faulty.g[1]), 0.0);
        assert_eq!(clean.sign, faulty.sign);
        assert!(clean.recovery_log().is_empty());
    }

    #[test]
    #[should_panic(expected = "recovery disabled")]
    fn injected_nan_panics_with_recovery_disabled() {
        let params = small_params(4.0, 8, 37).with_recovery(RecoveryPolicy::disabled());
        let mut core = DqmcCore::new(params);
        core.poison_greens(Spin::Up, 0, 0, f64::NAN);
        core.sweep(None);
    }

    #[test]
    fn mid_sweep_repair_keeps_physics_consistent() {
        // Force a mid-sweep repair via the internal path and check G equals
        // the from-scratch evaluation afterwards (the chain stays valid).
        let mut core = DqmcCore::new(small_params(4.0, 8, 41));
        core.sweep(None);
        core.repair_greens_after(core.params.model.slices - 1);
        for spin in Spin::BOTH {
            let naive = greens::greens_naive(&core.fac, &core.h, spin);
            let diff = greens::relative_difference(core.greens(spin), &naive.g);
            assert!(diff < 1e-8, "{spin:?}: {diff}");
        }
    }

    #[test]
    fn escalation_ladder_shrinks_then_falls_back() {
        // Drive `escalate` directly with taint faults: retries first, then a
        // cluster shrink, repeated down to k = 1, then host fallback.
        let mut core = DqmcCore::new(small_params(4.0, 8, 43));
        let retries = core.params.recovery.max_retries;
        // One incident: exhaust retries, then shrink 4 → 2.
        for _ in 0..retries {
            core.escalate(BackendFault::taint("test"), 0).unwrap();
        }
        assert_eq!(core.runtime_cluster_size(), 4);
        core.escalate(BackendFault::taint("test"), 0).unwrap();
        assert_eq!(core.runtime_cluster_size(), 2);
        assert_eq!(core.fault_streak, 0, "streak resets after escalation");
        // Next incidents: 2 → 1, then host fallback.
        for _ in 0..=retries {
            core.escalate(BackendFault::taint("test"), 0).unwrap();
        }
        assert_eq!(core.runtime_cluster_size(), 1);
        assert!(!core.use_host_fallback);
        for _ in 0..=retries {
            core.escalate(BackendFault::taint("test"), 0).unwrap();
        }
        assert!(core.use_host_fallback);
        // The run must still be able to sweep correctly at k = 1 on host.
        core.sweep(None);
        let naive = greens::greens_naive(&core.fac, &core.h, Spin::Up);
        assert!(greens::relative_difference(core.greens(Spin::Up), &naive.g) < 1e-8);
    }

    #[test]
    #[should_panic(expected = "all recovery rungs exhausted")]
    fn exhausted_ladder_panics() {
        // The classified error's Display embeds the legacy message, so the
        // panic raised by an infallible wrapper still matches this pattern.
        let mut core = DqmcCore::new(small_params(4.0, 8, 47));
        for _ in 0..64 {
            if let Err(e) = core.escalate(BackendFault::taint("test"), 0) {
                panic!("{e}");
            }
        }
    }

    #[test]
    fn exhausted_ladder_error_is_fatal() {
        let mut core = DqmcCore::new(small_params(4.0, 8, 47));
        let err = loop {
            if let Err(e) = core.escalate(BackendFault::taint("test"), 0) {
                break e;
            }
        };
        assert_eq!(err.severity, util::Severity::Fatal);
        assert!(!err.retryable());
        assert!(err.to_string().contains("all recovery rungs exhausted"));
    }

    #[test]
    fn sick_faults_escape_the_ladder_without_consuming_rungs() {
        let mut core = DqmcCore::new(small_params(4.0, 8, 61));
        let soft = core
            .escalate(BackendFault::sick("op missed its deadline", false), 0)
            .unwrap_err();
        assert_eq!(soft.severity, util::Severity::DeviceSick);
        assert!(soft.quarantines_device());
        assert!(!soft.hard);
        let hard = core
            .escalate(BackendFault::sick("device wedged", true), 0)
            .unwrap_err();
        assert!(hard.hard, "wedge is the worker-lost flavor");
        // No rung was consumed: cluster size, backend and streak untouched.
        assert_eq!(core.runtime_cluster_size(), 4);
        assert!(!core.use_host_fallback);
        assert_eq!(core.fault_streak, 0);
        // Both incidents were logged as escalations for the report tallies.
        assert_eq!(core.recovery_log().tallies().escalations, 2);
    }

    #[test]
    fn try_sweep_aborts_with_classified_error_on_sick_backend() {
        #[derive(Debug)]
        struct SickOnce {
            inner: HostBackend,
            fired: bool,
        }
        impl ComputeBackend for SickOnce {
            fn name(&self) -> &str {
                "sick-once"
            }
            fn cluster(
                &mut self,
                fac: &BMatrixFactory,
                h: &HsField,
                lo: usize,
                hi: usize,
                spin: Spin,
            ) -> Result<Matrix, BackendFault> {
                if !self.fired {
                    self.fired = true;
                    return Err(BackendFault::sick("scripted sick window", false));
                }
                self.inner.cluster(fac, h, lo, hi, spin)
            }
            fn wrap_into(
                &mut self,
                fac: &BMatrixFactory,
                h: &HsField,
                l: usize,
                spin: Spin,
                g: &Matrix,
                out: &mut Matrix,
            ) -> Result<(), BackendFault> {
                self.inner.wrap_into(fac, h, l, spin, g, out)
            }
        }
        let mut core = DqmcCore::new(small_params(4.0, 8, 67));
        core.set_backend(Box::new(SickOnce {
            inner: HostBackend,
            fired: false,
        }));
        let err = core.try_sweep(None).unwrap_err();
        assert_eq!(err.severity, util::Severity::DeviceSick);
        assert!(err.detail.contains("scripted sick window"), "{err}");
        assert_eq!(core.recovery_log().tallies().escalations, 1);
    }

    #[test]
    fn device_fault_prefers_host_fallback() {
        let mut core = DqmcCore::new(small_params(4.0, 8, 53));
        let retries = core.params.recovery.max_retries;
        for _ in 0..=retries {
            core.escalate(BackendFault::device("transfer dropped"), 0)
                .unwrap();
        }
        assert!(core.use_host_fallback, "device faults abandon the device");
        assert_eq!(
            core.runtime_cluster_size(),
            4,
            "cluster size untouched by device faults"
        );
        assert_eq!(core.active_backend_name(), "host");
    }

    #[test]
    fn shrunk_run_still_correct() {
        // Shrink mid-run (as the taint ladder would) and verify sweeps stay
        // consistent with from-scratch Green's functions.
        let mut core = DqmcCore::new(small_params(4.0, 8, 59));
        core.sweep(None);
        core.cache.reshape(2);
        core.sweep(None);
        for spin in Spin::BOTH {
            let naive = greens::greens_naive(&core.fac, &core.h, spin);
            let diff = greens::relative_difference(core.greens(spin), &naive.g);
            assert!(diff < 1e-8, "{spin:?}: {diff}");
        }
        assert_eq!(core.runtime_cluster_size(), 2);
    }
}
