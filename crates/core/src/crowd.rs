//! Crowd-batched walker execution: B independent Markov chains stepped in
//! lockstep through one batched backend.
//!
//! The paper's central lever is amortization — cluster `k` B-matrix GEMMs
//! per device transfer so the PCIe/launch tax is paid once per cluster.
//! QMCPACK's performance-portable redesign extends that amortization to a
//! second axis: organize walkers into *crowds* stepped in lockstep so one
//! batched driver call services B walkers per launch. This module is that
//! axis for the DQMC sweep: a [`Crowd`] owns B complete [`Simulation`]s
//! (same physics, hash-split seeds) and drives them slice by slice through
//! a [`CrowdBackend`] — one batched wrap per spin per slice, one batched
//! cluster prefill per boundary — instead of B independent sweeps.
//!
//! # One step path
//!
//! The crowd does **not** duplicate the sweep: the Metropolis site loop
//! ([`crate::sweep::DqmcCore::metropolis_slice`]) and the cluster-boundary
//! block ([`crate::sweep::DqmcCore::boundary_recompute`]) are the *same
//! methods* the solo sweep runs — the crowd only swaps the per-walker wrap
//! and cluster kernels for batched ones. Because every batched kernel is
//! bit-identical to its solo counterpart (the strided-batch GEMM issues the
//! per-walker op stream exactly; batching changes only the cost
//! accounting), a crowd of size B produces byte-identical observables to B
//! solo runs on the same seeds — crowd size is a pure throughput knob.
//!
//! # Recovery in crowd mode
//!
//! The solo recovery ladder carries over with two changes, both documented
//! invariants of this module:
//!
//! - **Device faults are crowd-scoped.** A launch failure or arena
//!   exhaustion aborts the whole batched call, so retry and permanent host
//!   fallback apply to the crowd as a unit (logged on walker 0, the job's
//!   base chain).
//! - **Taint is walker-scoped, and the shrink rung is not used.** A
//!   corrupted stacked download poisons exactly one walker's matrix; that
//!   walker alone takes the solo taint path (repair from its own HS field,
//!   which is bit-identical to an untainted run). Tainted prefill products
//!   are simply not installed — the walker's recompute rebuilds them on the
//!   host, again bit-identically — so the cluster-size shrink rung (which
//!   would have to reshape every walker at once) never fires in crowd mode.

use crate::backend::BackendFault;
use crate::bmat::BMatrixFactory;
use crate::checkpoint::CheckpointError;
use crate::hs::HsField;
use crate::hubbard::{SimParams, Spin};
use crate::profile::phases;
use crate::recovery::{RecoveryAction, RecoveryCause};
use crate::sim::Simulation;
use linalg::check::first_non_finite;
use linalg::{workspace, Matrix};
use std::fmt;
use util::{DqmcError, RunToken};

/// A provider of the sweep's two heavy kernels over a whole crowd: the
/// batched analogue of [`crate::backend::ComputeBackend`]. All walkers share
/// one [`BMatrixFactory`] (same model, different fields), so implementations
/// can keep `e^{∓ΔτK}` resident once for the crowd.
///
/// The bit-identity contract: entry `i` of every output must be byte-for-
/// byte what the corresponding solo kernel (`fac.wrap_into` / `fac.cluster`
/// or their bit-exact device forms) produces for walker `i`. Batching may
/// only change cost accounting, never op order within a walker.
pub trait CrowdBackend: fmt::Debug + Send {
    /// Short name for reports ("host-crowd", "sim-tesla-c2050-crowd", …).
    fn name(&self) -> &str;

    /// Wraps `outs[i] ← B_l(h_i) · gs[i] · B_l(h_i)⁻¹` for every walker.
    #[allow(clippy::too_many_arguments)]
    fn wrap_crowd(
        &mut self,
        fac: &BMatrixFactory,
        hs: &[&HsField],
        l: usize,
        spin: Spin,
        gs: &[&Matrix],
        outs: &mut [&mut Matrix],
    ) -> Result<(), BackendFault>;

    /// Computes the cluster product `B_{hi−1} ⋯ B_{lo}` for every walker.
    fn cluster_crowd(
        &mut self,
        fac: &BMatrixFactory,
        hs: &[&HsField],
        lo: usize,
        hi: usize,
        spin: Spin,
    ) -> Result<Vec<Matrix>, BackendFault>;

    /// Called by the recovery layer after any fault, before a retry; see
    /// [`crate::backend::ComputeBackend::notify_fault`].
    fn notify_fault(&mut self) {}

    /// Modeled device-seconds consumed so far (simulated-clock backends);
    /// `0.0` for backends with no device clock, like the host.
    fn device_seconds(&self) -> f64 {
        0.0
    }
}

/// The infallible host path: per-walker [`BMatrixFactory`] kernels in a
/// loop. Bit-identical to solo host execution by construction — this is the
/// fallback the crowd recovery ladder lands on.
#[derive(Clone, Copy, Debug, Default)]
pub struct HostCrowdBackend;

impl CrowdBackend for HostCrowdBackend {
    fn name(&self) -> &str {
        "host-crowd"
    }

    fn wrap_crowd(
        &mut self,
        fac: &BMatrixFactory,
        hs: &[&HsField],
        l: usize,
        spin: Spin,
        gs: &[&Matrix],
        outs: &mut [&mut Matrix],
    ) -> Result<(), BackendFault> {
        for i in 0..hs.len() {
            fac.wrap_into(hs[i], l, spin, gs[i], outs[i]);
        }
        Ok(())
    }

    fn cluster_crowd(
        &mut self,
        fac: &BMatrixFactory,
        hs: &[&HsField],
        lo: usize,
        hi: usize,
        spin: Spin,
    ) -> Result<Vec<Matrix>, BackendFault> {
        Ok(hs.iter().map(|h| fac.cluster(h, lo, hi, spin)).collect())
    }
}

/// B walkers stepped in lockstep through a batched backend.
#[derive(Debug)]
pub struct Crowd {
    walkers: Vec<Simulation>,
    backend: Box<dyn CrowdBackend>,
    host: HostCrowdBackend,
    /// True once recovery has permanently abandoned the batched backend for
    /// the whole crowd (the crowd-scoped analogue of the solo flag).
    use_host_fallback: bool,
    /// Consecutive failures within the current crowd-level incident.
    fault_streak: u32,
}

impl Crowd {
    /// Builds a crowd from per-walker parameters. All entries must describe
    /// the same physics and sweep schedule (only the seed may differ) —
    /// lockstep execution requires every walker to hit the same slice and
    /// boundary cadence. Panics if the list is empty or the schedules
    /// disagree.
    pub fn new(params: Vec<SimParams>) -> Self {
        assert!(!params.is_empty(), "a crowd needs at least one walker");
        let p0 = &params[0];
        for p in &params[1..] {
            assert!(
                p.model.slices == p0.model.slices
                    && p.model.nsites() == p0.model.nsites()
                    && p.warmup_sweeps == p0.warmup_sweeps
                    && p.measure_sweeps == p0.measure_sweeps
                    && p.cluster_size == p0.cluster_size
                    && p.measure_per_cluster == p0.measure_per_cluster,
                "crowd walkers must share physics and sweep schedule"
            );
        }
        let walkers = params.into_iter().map(Simulation::new).collect();
        Crowd {
            walkers,
            backend: Box::new(HostCrowdBackend),
            host: HostCrowdBackend,
            use_host_fallback: false,
            fault_streak: 0,
        }
    }

    /// Installs a batched backend (e.g. the `gpusim` crowd device). Builder
    /// form, mirroring [`Simulation::with_backend`].
    pub fn with_backend(mut self, backend: Box<dyn CrowdBackend>) -> Self {
        self.backend = backend;
        self
    }

    /// Number of walkers (the crowd size B).
    pub fn len(&self) -> usize {
        self.walkers.len()
    }

    /// Whether the crowd is empty (it never is after construction).
    pub fn is_empty(&self) -> bool {
        self.walkers.is_empty()
    }

    /// Walker `i` (observables, acceptance, recovery log, …).
    pub fn walker(&self, i: usize) -> &Simulation {
        &self.walkers[i]
    }

    /// Mutable walker access (fault drills and tests).
    pub fn walker_mut(&mut self, i: usize) -> &mut Simulation {
        &mut self.walkers[i]
    }

    /// All walkers, in chain order.
    pub fn walkers(&self) -> &[Simulation] {
        &self.walkers
    }

    /// Modeled device-seconds consumed by the batched backend. Stays valid
    /// after a crowd-level host fallback: the installed backend keeps the
    /// clock it accumulated before recovery abandoned it.
    pub fn device_seconds(&self) -> f64 {
        self.backend.device_seconds()
    }

    /// Name of the batched backend actually in use.
    pub fn active_backend_name(&self) -> &str {
        if self.use_host_fallback {
            self.host.name()
        } else {
            self.backend.name()
        }
    }

    /// True once every walker has run its configured sweeps. Walkers are in
    /// lockstep, so walker 0 speaks for the crowd.
    pub fn is_complete(&self) -> bool {
        self.walkers[0].is_complete()
    }

    /// Configured sweeps not yet executed per walker.
    pub fn sweeps_remaining(&self) -> usize {
        self.walkers[0].sweeps_remaining()
    }

    /// Advances every walker by up to `n` lockstep sweeps, stamping `token`
    /// at each sweep boundary; same contract as [`Simulation::try_step`].
    pub fn try_step(&mut self, n: usize, token: &RunToken) -> Result<usize, DqmcError> {
        let mut done = 0;
        while done < n && !self.is_complete() {
            let w0 = &self.walkers[0];
            let measure = w0.warmup_done >= w0.core.params.warmup_sweeps;
            self.try_sweep_crowd(measure)?;
            for w in &mut self.walkers {
                if measure {
                    w.finish_measure_sweep();
                } else {
                    w.warmup_done += 1;
                }
            }
            token.tick();
            done += 1;
        }
        Ok(done)
    }

    /// Runs the crowd to completion (convenience for tests and benches);
    /// panics on a classified failure, like [`Simulation::run`].
    pub fn run(&mut self) {
        let token = RunToken::new();
        while !self.is_complete() {
            if let Err(e) = self.try_step(usize::MAX, &token) {
                panic!("{e}");
            }
        }
    }

    /// The crowd state as a multi-image `DQCW` checkpoint: a count header
    /// followed by each walker's own length-prefixed `DQCP` image, so crowd
    /// preemption reuses the solo checkpoint codec unchanged.
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"DQCW");
        out.extend_from_slice(&(self.walkers.len() as u32).to_le_bytes());
        for w in &self.walkers {
            let img = w.checkpoint_bytes();
            out.extend_from_slice(&(img.len() as u64).to_le_bytes());
            out.extend_from_slice(&img);
        }
        out
    }

    /// Rebuilds a crowd from [`Crowd::checkpoint_bytes`]. `params` must
    /// list the same walkers in the same order (validated per image by the
    /// solo fingerprint check). The resumed crowd continues bit-identically;
    /// note the crowd-level host-fallback flag is *not* persisted — a
    /// resumed crowd starts back on its batched backend, which is sound
    /// because the batched and host paths are bit-identical.
    pub fn resume_bytes(bytes: &[u8], params: &[SimParams]) -> Result<Self, CheckpointError> {
        let truncated = |needed: usize, remaining: usize| {
            CheckpointError::Codec(util::codec::CodecError::Truncated { needed, remaining })
        };
        if bytes.len() < 8 {
            return Err(truncated(8, bytes.len()));
        }
        if &bytes[..4] != b"DQCW" {
            return Err(CheckpointError::Codec(util::codec::CodecError::BadMagic));
        }
        let count = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
        assert_eq!(
            count,
            params.len(),
            "crowd image holds {count} walkers, {} params given",
            params.len()
        );
        let mut walkers = Vec::with_capacity(count);
        let mut at = 8usize;
        for p in params {
            if bytes.len() < at + 8 {
                return Err(truncated(at + 8, bytes.len()));
            }
            let len = u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes")) as usize;
            at += 8;
            if bytes.len() < at + len {
                return Err(truncated(at + len, bytes.len()));
            }
            walkers.push(Simulation::resume_bytes(&bytes[at..at + len], p)?);
            at += len;
        }
        Ok(Crowd {
            walkers,
            backend: Box::new(HostCrowdBackend),
            host: HostCrowdBackend,
            use_host_fallback: false,
            fault_streak: 0,
        })
    }

    /// One lockstep sweep of every walker: shared Metropolis/boundary code
    /// from the solo sweep, batched wrap and cluster kernels from the crowd
    /// backend. Mirrors [`crate::sweep::DqmcCore::try_sweep`].
    fn try_sweep_crowd(&mut self, measure: bool) -> Result<(), DqmcError> {
        let b = self.walkers.len();
        let n = self.walkers[0].core.nsites();
        for w in &mut self.walkers {
            w.core.sweeps_run += 1;
            w.core.repair_if_tainted()?;
        }
        let mut wrapped: Vec<[Matrix; 2]> = (0..b)
            .map(|_| [workspace::take_matrix(n, n), workspace::take_matrix(n, n)])
            .collect();
        let result = self.sweep_slices_crowd(&mut wrapped, measure);
        for [w0, w1] in wrapped {
            workspace::put_matrix(w0);
            workspace::put_matrix(w1);
        }
        result?;
        if measure {
            for w in &mut self.walkers {
                let core = &mut w.core;
                let (gup, gdn, sign, u) = (&core.g[0], &core.g[1], core.sign, core.params.model.u);
                let obs = &mut w.obs;
                core.timer
                    .time(phases::MEASUREMENT, || obs.record(u, gup, gdn, sign));
            }
        }
        Ok(())
    }

    /// The lockstep slice loop; the crowd analogue of
    /// [`crate::sweep::DqmcCore::sweep_slices`].
    fn sweep_slices_crowd(
        &mut self,
        wrapped: &mut [[Matrix; 2]],
        measure: bool,
    ) -> Result<(), DqmcError> {
        let l_slices = self.walkers[0].core.params.model.slices;
        for l in 0..l_slices {
            for w in &mut self.walkers {
                w.core.metropolis_slice(l);
            }
            let k = self.walkers[0].core.cache.cluster_size();
            debug_assert!(
                self.walkers
                    .iter()
                    .all(|w| w.core.cache.cluster_size() == k),
                "lockstep walkers diverged in cluster size (shrink rung fired?)"
            );
            let at_boundary = (l + 1) % k == 0 || l + 1 == l_slices;
            let wrap_ok = self.wrap_crowd_with_recovery(l, at_boundary, wrapped)?;
            if at_boundary {
                self.prefill_cluster_cache()?;
                for (i, w) in self.walkers.iter_mut().enumerate() {
                    let mut obs = if measure { Some(&mut w.obs) } else { None };
                    w.core
                        .boundary_recompute(l, wrap_ok[i], &mut wrapped[i], &mut obs)?;
                }
            } else {
                for (i, w) in self.walkers.iter_mut().enumerate() {
                    if wrap_ok[i] {
                        std::mem::swap(&mut w.core.g[0], &mut wrapped[i][0]);
                        std::mem::swap(&mut w.core.g[1], &mut wrapped[i][1]);
                    }
                    // wrap_ok == false mid-sweep: repair_greens_after already
                    // placed clean post-wrap matrices in that walker's g.
                }
            }
        }
        Ok(())
    }

    /// One timed attempt at the batched wrap of both spins across the whole
    /// crowd, returning the per-walker taint list (index, detail) found by
    /// scanning the downloaded matrices — the crowd analogue of
    /// [`crate::sweep::DqmcCore::try_wrap_pair`].
    fn try_wrap_crowd(
        &mut self,
        l: usize,
        wrapped: &mut [[Matrix; 2]],
    ) -> Result<Vec<(usize, String)>, BackendFault> {
        let b = self.walkers.len() as u32;
        let t0 = std::time::Instant::now();
        {
            let backend: &mut dyn CrowdBackend = if self.use_host_fallback {
                &mut self.host
            } else {
                self.backend.as_mut()
            };
            let fac = &self.walkers[0].core.fac;
            let hs: Vec<&HsField> = self.walkers.iter().map(|w| &w.core.h).collect();
            for spin in Spin::BOTH {
                let gs: Vec<&Matrix> = self
                    .walkers
                    .iter()
                    .map(|w| &w.core.g[spin.index()])
                    .collect();
                let mut outs: Vec<&mut Matrix> = wrapped
                    .iter_mut()
                    .map(|pair| &mut pair[spin.index()])
                    .collect();
                backend.wrap_crowd(fac, &hs, l, spin, &gs, &mut outs)?;
            }
        }
        let per_walker = t0.elapsed() / b;
        for w in &mut self.walkers {
            w.core.timer.add(phases::WRAPPING, per_walker);
        }
        let mut tainted = Vec::new();
        for (i, pair) in wrapped.iter().enumerate() {
            for (s, m) in pair.iter().enumerate() {
                if let Some((idx, v)) = first_non_finite(m.as_slice()) {
                    tainted.push((
                        i,
                        format!(
                            "wrapped G[{s}] of walker {i} has {v} at element {idx} after slice {l}"
                        ),
                    ));
                    break;
                }
            }
        }
        Ok(tainted)
    }

    /// Batched wrap with the crowd recovery ladder. Returns the per-walker
    /// validity of `wrapped` (`false` entries took the taint-repair path;
    /// see the module docs for how the solo ladder maps onto crowds).
    fn wrap_crowd_with_recovery(
        &mut self,
        l: usize,
        at_boundary: bool,
        wrapped: &mut [[Matrix; 2]],
    ) -> Result<Vec<bool>, DqmcError> {
        let b = self.walkers.len();
        let policy = self.walkers[0].core.params.recovery.clone();
        loop {
            match self.try_wrap_crowd(l, wrapped) {
                Ok(taint) if taint.is_empty() => {
                    self.fault_streak = 0;
                    return Ok(vec![true; b]);
                }
                Ok(taint) => {
                    if !policy.enabled {
                        return Err(DqmcError::fatal(
                            "crowd-wrap",
                            format!("wrap taint with recovery disabled: {}", taint[0].1),
                        ));
                    }
                    self.fault_streak += 1;
                    if self.fault_streak <= policy.max_retries {
                        let attempt = self.fault_streak;
                        self.active_backend().notify_fault();
                        for (i, detail) in &taint {
                            self.walkers[*i].core.push_event(
                                l,
                                RecoveryCause::NonFinite(detail.clone()),
                                RecoveryAction::Retry { attempt },
                            );
                        }
                        continue;
                    }
                    // Retries exhausted: the tainted walkers alone take the
                    // solo taint path; clean walkers keep their wraps.
                    self.fault_streak = 0;
                    let mut ok = vec![true; b];
                    for (i, detail) in taint {
                        ok[i] = false;
                        self.walkers[i].core.push_event(
                            l,
                            RecoveryCause::NonFinite(detail),
                            RecoveryAction::TaintRepair,
                        );
                        if !at_boundary {
                            self.walkers[i].core.repair_greens_after(l);
                        }
                    }
                    return Ok(ok);
                }
                Err(fault) => {
                    if fault.is_sick() {
                        return Err(self.walkers[0].core.escalate_sick("crowd-wrap", &fault, l));
                    }
                    if !policy.enabled {
                        return Err(DqmcError::fatal(
                            "crowd-wrap",
                            format!("wrap fault with recovery disabled: {fault}"),
                        ));
                    }
                    let cause = RecoveryCause::Device(fault.detail.clone());
                    self.fault_streak += 1;
                    if self.fault_streak <= policy.max_retries {
                        let attempt = self.fault_streak;
                        self.active_backend().notify_fault();
                        self.walkers[0].core.push_event(
                            l,
                            cause,
                            RecoveryAction::Retry { attempt },
                        );
                        continue;
                    }
                    if !self.use_host_fallback && policy.allow_host_fallback {
                        self.use_host_fallback = true;
                        self.fault_streak = 0;
                        self.walkers[0]
                            .core
                            .push_event(l, cause, RecoveryAction::HostFallback);
                        continue;
                    }
                    return Err(DqmcError::transient(
                        "crowd-wrap",
                        format!("unrecoverable device fault during crowd wrap: {fault}"),
                    ));
                }
            }
        }
    }

    /// Batched prefill of every stale cluster product across the crowd, so
    /// the per-walker boundary recompute runs on pure cache hits. Tainted
    /// products are never installed (the walker's recompute rebuilds them
    /// host-side, bit-identically), so this is an optimisation with solo
    /// semantics. Skipped when recycling is off — the recompute invalidates
    /// the cache up front, so prefilled products would be dropped unused.
    fn prefill_cluster_cache(&mut self) -> Result<(), DqmcError> {
        if !self.walkers[0].core.params.recycle {
            return Ok(());
        }
        let nclusters = self.walkers[0].core.cache.nclusters();
        for spin in Spin::BOTH {
            for c in 0..nclusters {
                let need: Vec<usize> = self
                    .walkers
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| w.core.cache.is_stale(c, spin))
                    .map(|(i, _)| i)
                    .collect();
                if need.is_empty() {
                    continue;
                }
                let (lo, hi) = self.walkers[0].core.cache.range(c);
                self.cluster_crowd_with_recovery(c, lo, hi, spin, &need)?;
            }
        }
        Ok(())
    }

    /// Computes and installs one cluster product for the `need` subset of
    /// walkers through the crowd recovery ladder.
    fn cluster_crowd_with_recovery(
        &mut self,
        c: usize,
        lo: usize,
        hi: usize,
        spin: Spin,
        need: &[usize],
    ) -> Result<(), DqmcError> {
        let policy = self.walkers[0].core.params.recovery.clone();
        loop {
            let t0 = std::time::Instant::now();
            let r = {
                let backend: &mut dyn CrowdBackend = if self.use_host_fallback {
                    &mut self.host
                } else {
                    self.backend.as_mut()
                };
                let fac = &self.walkers[0].core.fac;
                let hs: Vec<&HsField> = need.iter().map(|&i| &self.walkers[i].core.h).collect();
                backend.cluster_crowd(fac, &hs, lo, hi, spin)
            };
            let per_walker = t0.elapsed() / need.len() as u32;
            for &i in need {
                self.walkers[i]
                    .core
                    .timer
                    .add(phases::CLUSTERING, per_walker);
            }
            match r {
                Ok(products) => {
                    let taint_count = products
                        .iter()
                        .filter(|m| first_non_finite(m.as_slice()).is_some())
                        .count();
                    if taint_count > 0 && policy.enabled && self.fault_streak < policy.max_retries {
                        self.fault_streak += 1;
                        let attempt = self.fault_streak;
                        self.active_backend().notify_fault();
                        self.walkers[0].core.push_event(
                            lo,
                            RecoveryCause::NonFinite(format!(
                                "{taint_count} tainted product(s) in crowd cluster [{lo}, {hi}) {spin:?}"
                            )),
                            RecoveryAction::Retry { attempt },
                        );
                        continue;
                    }
                    self.fault_streak = 0;
                    for (&i, m) in need.iter().zip(products) {
                        // `install` re-scans; a still-tainted product is
                        // dropped here and the walker's recompute rebuilds
                        // it on the host — the crowd's replacement for the
                        // shrink rung.
                        if let Err(f) = self.walkers[i].core.cache.install(c, spin, m) {
                            if !policy.enabled {
                                return Err(DqmcError::fatal(
                                    "crowd-cluster",
                                    format!("cluster taint with recovery disabled: {f}"),
                                ));
                            }
                            self.walkers[i].core.push_event(
                                lo,
                                RecoveryCause::NonFinite(f.detail),
                                RecoveryAction::TaintRepair,
                            );
                        }
                    }
                    return Ok(());
                }
                Err(fault) => {
                    if fault.is_sick() {
                        return Err(self.walkers[0].core.escalate_sick(
                            "crowd-cluster",
                            &fault,
                            lo,
                        ));
                    }
                    if !policy.enabled {
                        return Err(DqmcError::fatal(
                            "crowd-cluster",
                            format!("cluster fault with recovery disabled: {fault}"),
                        ));
                    }
                    let cause = RecoveryCause::Device(fault.detail.clone());
                    self.fault_streak += 1;
                    if self.fault_streak <= policy.max_retries {
                        let attempt = self.fault_streak;
                        self.active_backend().notify_fault();
                        self.walkers[0].core.push_event(
                            lo,
                            cause,
                            RecoveryAction::Retry { attempt },
                        );
                        continue;
                    }
                    if !self.use_host_fallback && policy.allow_host_fallback {
                        self.use_host_fallback = true;
                        self.fault_streak = 0;
                        self.walkers[0]
                            .core
                            .push_event(lo, cause, RecoveryAction::HostFallback);
                        continue;
                    }
                    return Err(DqmcError::transient(
                        "crowd-cluster",
                        format!("unrecoverable device fault during crowd cluster: {fault}"),
                    ));
                }
            }
        }
    }

    fn active_backend(&mut self) -> &mut dyn CrowdBackend {
        if self.use_host_fallback {
            &mut self.host
        } else {
            self.backend.as_mut()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::chain_seed;
    use crate::hubbard::ModelParams;
    use lattice::Lattice;

    fn params(seed: u64) -> SimParams {
        let model = ModelParams::new(Lattice::square(2, 2, 1.0), 4.0, 0.0, 0.125, 8);
        SimParams::new(model)
            .with_sweeps(6, 12)
            .with_seed(seed)
            .with_cluster_size(4)
            .with_bin_size(2)
    }

    fn crowd_params(b: usize) -> Vec<SimParams> {
        (0..b)
            .map(|c| params(chain_seed(100, 0, c as u64)))
            .collect()
    }

    #[test]
    fn host_crowd_is_bit_identical_to_solo_runs() {
        let mut crowd = Crowd::new(crowd_params(4));
        crowd.run();
        for (c, w) in crowd.walkers().iter().enumerate() {
            let mut solo = Simulation::new(params(chain_seed(100, 0, c as u64)));
            solo.run();
            assert_eq!(solo.core.h, w.core.h, "walker {c} field diverged");
            assert_eq!(solo.core.rng.state(), w.core.rng.state());
            assert_eq!(solo.core.g[0].max_abs_diff(&w.core.g[0]), 0.0);
            assert_eq!(solo.core.g[1].max_abs_diff(&w.core.g[1]), 0.0);
            let (ds, es) = solo.observables().double_occupancy();
            let (dc, ec) = w.observables().double_occupancy();
            assert_eq!(ds.to_bits(), dc.to_bits(), "walker {c} observables");
            assert_eq!(es.to_bits(), ec.to_bits());
        }
    }

    #[test]
    fn crowd_size_does_not_change_any_walker() {
        // The tentpole invariant at the core level: the first walker of a
        // B=1 crowd and of a B=4 crowd are byte-identical.
        let mut one = Crowd::new(crowd_params(1));
        one.run();
        let mut four = Crowd::new(crowd_params(4));
        four.run();
        let a = one.walker(0);
        let b = four.walker(0);
        assert_eq!(a.core.h, b.core.h);
        assert_eq!(a.core.rng.state(), b.core.rng.state());
        assert_eq!(a.core.g[0].max_abs_diff(&b.core.g[0]), 0.0);
        let (da, _) = a.observables().double_occupancy();
        let (db, _) = b.observables().double_occupancy();
        assert_eq!(da.to_bits(), db.to_bits());
    }

    #[test]
    fn crowd_measure_per_cluster_matches_solo() {
        let mk = |seed: u64| params(seed).with_measure_per_cluster(true);
        let mut crowd = Crowd::new(vec![mk(7), mk(8)]);
        crowd.run();
        for (i, seed) in [7u64, 8].iter().enumerate() {
            let mut solo = Simulation::new(mk(*seed));
            solo.run();
            assert_eq!(
                solo.observables().count(),
                crowd.walker(i).observables().count()
            );
            let (ds, _) = solo.observables().double_occupancy();
            let (dc, _) = crowd.walker(i).observables().double_occupancy();
            assert_eq!(ds.to_bits(), dc.to_bits());
        }
    }

    #[test]
    fn crowd_checkpoint_resumes_bit_identically() {
        let mut whole = Crowd::new(crowd_params(3));
        whole.run();

        let mut first = Crowd::new(crowd_params(3));
        let token = RunToken::new();
        first.try_step(7, &token).unwrap();
        let image = first.checkpoint_bytes();
        drop(first);

        let mut resumed = Crowd::resume_bytes(&image, &crowd_params(3)).unwrap();
        resumed.run();
        for (w, r) in whole.walkers().iter().zip(resumed.walkers()) {
            assert_eq!(w.core.h, r.core.h);
            assert_eq!(w.core.rng.state(), r.core.rng.state());
            assert_eq!(w.core.g[0].max_abs_diff(&r.core.g[0]), 0.0);
            let (dw, _) = w.observables().double_occupancy();
            let (dr, _) = r.observables().double_occupancy();
            assert_eq!(dw.to_bits(), dr.to_bits());
        }
    }

    #[test]
    fn corrupt_crowd_image_is_rejected() {
        let crowd = Crowd::new(crowd_params(2));
        let mut image = crowd.checkpoint_bytes();
        image[0] = b'X';
        assert!(matches!(
            Crowd::resume_bytes(&image, &crowd_params(2)),
            Err(CheckpointError::Codec(_))
        ));
        assert!(matches!(
            Crowd::resume_bytes(&image[..3], &crowd_params(2)),
            Err(CheckpointError::Codec(_))
        ));
    }

    #[test]
    fn poisoned_walker_heals_without_touching_neighbours() {
        // Taint one walker between sweeps: the sweep-start scan repairs it
        // bit-identically while the other walkers never notice.
        let token = RunToken::new();
        let mut clean = Crowd::new(crowd_params(3));
        clean.try_step(1, &token).unwrap();
        let mut faulty = Crowd::new(crowd_params(3));
        faulty.try_step(1, &token).unwrap();
        faulty
            .walker_mut(1)
            .core_mut()
            .poison_greens(Spin::Up, 0, 1, f64::NAN);
        while !clean.is_complete() {
            clean.try_step(2, &token).unwrap();
            faulty.try_step(2, &token).unwrap();
        }
        assert!(!faulty.walker(1).recovery_log().is_empty());
        for (c, f) in clean.walkers().iter().zip(faulty.walkers()) {
            assert_eq!(c.core.h, f.core.h);
            assert_eq!(c.core.rng.state(), f.core.rng.state());
            assert_eq!(c.core.g[0].max_abs_diff(&f.core.g[0]), 0.0);
            let (dc, _) = c.observables().double_occupancy();
            let (df, _) = f.observables().double_occupancy();
            assert_eq!(dc.to_bits(), df.to_bits());
        }
    }

    /// A crowd backend that fails every call with a device fault `fails`
    /// times, then delegates to the host — exercising the crowd retry rung.
    #[derive(Debug)]
    struct FlakyCrowd {
        host: HostCrowdBackend,
        fails: u32,
        notified: u32,
    }

    impl CrowdBackend for FlakyCrowd {
        fn name(&self) -> &str {
            "flaky-crowd"
        }
        fn wrap_crowd(
            &mut self,
            fac: &BMatrixFactory,
            hs: &[&HsField],
            l: usize,
            spin: Spin,
            gs: &[&Matrix],
            outs: &mut [&mut Matrix],
        ) -> Result<(), BackendFault> {
            if self.fails > 0 {
                self.fails -= 1;
                return Err(BackendFault::device("scripted crowd wrap failure"));
            }
            self.host.wrap_crowd(fac, hs, l, spin, gs, outs)
        }
        fn cluster_crowd(
            &mut self,
            fac: &BMatrixFactory,
            hs: &[&HsField],
            lo: usize,
            hi: usize,
            spin: Spin,
        ) -> Result<Vec<Matrix>, BackendFault> {
            if self.fails > 0 {
                self.fails -= 1;
                return Err(BackendFault::device("scripted crowd cluster failure"));
            }
            self.host.cluster_crowd(fac, hs, lo, hi, spin)
        }
        fn notify_fault(&mut self) {
            self.notified += 1;
        }
    }

    #[test]
    fn device_faults_retry_then_heal_bit_identically() {
        let mut clean = Crowd::new(crowd_params(2));
        clean.run();
        let mut flaky = Crowd::new(crowd_params(2)).with_backend(Box::new(FlakyCrowd {
            host: HostCrowdBackend,
            fails: 2,
            notified: 0,
        }));
        flaky.run();
        assert!(!flaky.walker(0).recovery_log().is_empty());
        for (c, f) in clean.walkers().iter().zip(flaky.walkers()) {
            assert_eq!(c.core.h, f.core.h);
            let (dc, _) = c.observables().double_occupancy();
            let (df, _) = f.observables().double_occupancy();
            assert_eq!(dc.to_bits(), df.to_bits());
        }
    }

    #[test]
    fn persistent_device_faults_fall_back_to_host_for_the_crowd() {
        let mut flaky = Crowd::new(crowd_params(2)).with_backend(Box::new(FlakyCrowd {
            host: HostCrowdBackend,
            fails: u32::MAX,
            notified: 0,
        }));
        flaky.run();
        assert_eq!(flaky.active_backend_name(), "host-crowd");
        let mut clean = Crowd::new(crowd_params(2));
        clean.run();
        for (c, f) in clean.walkers().iter().zip(flaky.walkers()) {
            let (dc, _) = c.observables().double_occupancy();
            let (df, _) = f.observables().double_occupancy();
            assert_eq!(dc.to_bits(), df.to_bits());
        }
    }

    #[test]
    fn sick_crowd_backend_escapes_as_classified_error() {
        #[derive(Debug)]
        struct SickCrowd;
        impl CrowdBackend for SickCrowd {
            fn name(&self) -> &str {
                "sick-crowd"
            }
            fn wrap_crowd(
                &mut self,
                _fac: &BMatrixFactory,
                _hs: &[&HsField],
                _l: usize,
                _spin: Spin,
                _gs: &[&Matrix],
                _outs: &mut [&mut Matrix],
            ) -> Result<(), BackendFault> {
                Err(BackendFault::sick("scripted sick window", false))
            }
            fn cluster_crowd(
                &mut self,
                _fac: &BMatrixFactory,
                _hs: &[&HsField],
                _lo: usize,
                _hi: usize,
                _spin: Spin,
            ) -> Result<Vec<Matrix>, BackendFault> {
                Err(BackendFault::sick("scripted sick window", false))
            }
        }
        let mut crowd = Crowd::new(crowd_params(2)).with_backend(Box::new(SickCrowd));
        let err = crowd.try_step(1, &RunToken::new()).unwrap_err();
        assert_eq!(err.severity, util::Severity::DeviceSick);
    }
}
