//! Top-level simulation driver: warmup, measurement, reporting.

use crate::hubbard::{SimParams, Spin};
use crate::measure::Observables;
use crate::profile::{phases, report, PhaseReport};
use crate::sweep::DqmcCore;
use crate::tdm::{unequal_time_greens_stable, TimeDependentObs};
use linalg::Matrix;

/// A complete DQMC simulation (the paper's 1000-warmup / 2000-measurement
/// runs are `run()` with the corresponding sweep counts).
#[derive(Debug)]
pub struct Simulation {
    core: DqmcCore,
    obs: Observables,
    tdm: Option<TimeDependentObs>,
    warmup_done: usize,
    measure_done: usize,
}

impl Simulation {
    /// Builds the simulation state (field initialisation + first Green's
    /// function evaluation happen here).
    pub fn new(params: SimParams) -> Self {
        let obs = Observables::new(&params.model, params.bin_size);
        let tdm = params.measure_unequal_time.then(|| {
            TimeDependentObs::new(
                &params.model.lattice,
                params.cluster_size,
                params.model.slices,
                params.model.dtau,
                params.bin_size,
            )
        });
        let core = DqmcCore::new(params);
        Simulation {
            core,
            obs,
            tdm,
            warmup_done: 0,
            measure_done: 0,
        }
    }

    /// Runs the configured warmup and measurement sweeps.
    pub fn run(&mut self) {
        let (w, m) = (
            self.core.params.warmup_sweeps,
            self.core.params.measure_sweeps,
        );
        self.warmup(w);
        self.measure(m);
    }

    /// Runs `n` thermalisation sweeps (no measurements).
    pub fn warmup(&mut self, n: usize) {
        for _ in 0..n {
            self.core.sweep(None);
        }
        self.warmup_done += n;
    }

    /// Runs `n` measurement sweeps.
    pub fn measure(&mut self, n: usize) {
        for _ in 0..n {
            self.core.sweep(Some(&mut self.obs));
            if let Some(tdm) = self.tdm.as_mut() {
                // Dynamic measurements via the stable block-matrix TDGF
                // (accurate at any β; see `tdm` module docs for why the
                // forward UDT propagation is not used here).
                let t0 = std::time::Instant::now();
                let k = self.core.params.cluster_size;
                let gu = unequal_time_greens_stable(&self.core.fac, &self.core.h, k, Spin::Up);
                let gd = unequal_time_greens_stable(&self.core.fac, &self.core.h, k, Spin::Down);
                tdm.record(&gu, &gd, self.core.sign);
                self.core.timer.add(phases::MEASUREMENT, t0.elapsed());
            }
        }
        self.measure_done += n;
    }

    /// Time-dependent observables, when enabled via
    /// [`SimParams::with_unequal_time`].
    pub fn time_dependent(&self) -> Option<&TimeDependentObs> {
        self.tdm.as_ref()
    }

    /// Accumulated observables.
    pub fn observables(&self) -> &Observables {
        &self.obs
    }

    /// Simulation parameters.
    pub fn params(&self) -> &SimParams {
        &self.core.params
    }

    /// Sweeps completed as `(warmup, measurement)`.
    pub fn sweeps_done(&self) -> (usize, usize) {
        (self.warmup_done, self.measure_done)
    }

    /// Metropolis acceptance rate.
    pub fn acceptance_rate(&self) -> f64 {
        self.core.acceptance_rate()
    }

    /// Current Green's function for a spin (canonical position).
    pub fn greens(&self, spin: Spin) -> &Matrix {
        self.core.greens(spin)
    }

    /// Largest observed wrap-vs-recompute relative difference.
    pub fn max_wrap_error(&self) -> f64 {
        let m = self.core.wrap_diff.max();
        if m.is_finite() {
            m
        } else {
            0.0
        }
    }

    /// Table I style phase breakdown of the time spent so far.
    pub fn phase_report(&self) -> PhaseReport {
        report(&self.core.timer)
    }

    /// Cluster cache `(rebuilds, hits)` — recycling effectiveness.
    pub fn cache_stats(&self) -> (usize, usize) {
        self.core.cache.stats()
    }

    /// Access to the underlying engine (benchmarks and tests).
    pub fn core_mut(&mut self) -> &mut DqmcCore {
        &mut self.core
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hubbard::ModelParams;
    use lattice::Lattice;

    fn quick_sim(u: f64, seed: u64) -> Simulation {
        let model = ModelParams::new(Lattice::square(2, 2, 1.0), u, 0.0, 0.125, 8);
        Simulation::new(
            SimParams::new(model)
                .with_sweeps(10, 20)
                .with_seed(seed)
                .with_cluster_size(4) // two clusters, so recycling can hit
                .with_bin_size(2),
        )
    }

    #[test]
    fn run_produces_measurements() {
        let mut sim = quick_sim(4.0, 1);
        sim.run();
        assert_eq!(sim.sweeps_done(), (10, 20));
        assert_eq!(sim.observables().count(), 20);
        let (s, _) = sim.observables().avg_sign();
        assert_eq!(s, 1.0);
    }

    #[test]
    fn half_filling_density_near_one() {
        let mut sim = quick_sim(4.0, 2);
        sim.run();
        let (rho, err) = sim.observables().density();
        // Particle-hole symmetry pins ρ = 1 exactly in expectation.
        assert!((rho - 1.0).abs() < 0.05 + 3.0 * err, "rho {rho} ± {err}");
    }

    #[test]
    fn repulsion_suppresses_double_occupancy() {
        let mut free = quick_sim(0.0, 3);
        free.run();
        let mut interacting = quick_sim(8.0, 3);
        interacting.run();
        let (d0, _) = free.observables().double_occupancy();
        let (d8, _) = interacting.observables().double_occupancy();
        assert!(
            d8 < d0 - 0.02,
            "U should suppress double occupancy: {d8} !< {d0}"
        );
    }

    #[test]
    fn phase_report_sums_to_hundred() {
        let mut sim = quick_sim(4.0, 4);
        sim.run();
        let rep = sim.phase_report();
        let total_pct: f64 = rep.rows.iter().map(|(_, _, p)| p).sum();
        assert!((total_pct - 100.0).abs() < 1e-6, "{total_pct}");
        assert!(rep.total > 0.0);
    }

    #[test]
    fn recycling_hits_accumulate() {
        let mut sim = quick_sim(4.0, 5);
        sim.run();
        let (rebuilds, hits) = sim.cache_stats();
        assert!(rebuilds > 0);
        assert!(hits > 0, "recycling should produce cache hits");
    }

    #[test]
    fn wrap_error_stays_tiny_on_small_system() {
        let mut sim = quick_sim(6.0, 6);
        sim.run();
        assert!(sim.max_wrap_error() < 1e-6, "{}", sim.max_wrap_error());
    }

    #[test]
    fn unequal_time_measurements_recorded() {
        let model = ModelParams::new(Lattice::square(2, 2, 1.0), 4.0, 0.0, 0.125, 8);
        let mut sim = Simulation::new(
            SimParams::new(model)
                .with_sweeps(5, 10)
                .with_seed(9)
                .with_cluster_size(4)
                .with_unequal_time(true),
        );
        sim.run();
        let tdm = sim.time_dependent().expect("enabled");
        assert_eq!(tdm.count(), 10);
        let gloc = tdm.gloc();
        assert_eq!(gloc.len(), 3); // τ = 0, β/2, β
                                   // Anti-periodicity in the trace: G_loc(0) + G_loc(β) =
                                   // Tr(G + (I−G))/N / spin-avg = 1.
        let sum = gloc[0].0 + gloc[2].0;
        assert!((sum - 1.0).abs() < 1e-8, "G(0)+G(beta) = {sum}");
        // G decays away from τ = 0 at half filling.
        assert!(gloc[1].0 < gloc[0].0);
    }

    #[test]
    fn checkerboard_gives_same_physics_within_trotter() {
        let run = |cb: bool| {
            let model = ModelParams::new(Lattice::square(4, 4, 1.0), 4.0, 0.0, 0.1, 20);
            let mut sim = Simulation::new(
                SimParams::new(model)
                    .with_sweeps(20, 60)
                    .with_seed(31)
                    .with_checkerboard(cb),
            );
            sim.run();
            let (rho, _) = sim.observables().density();
            let (docc, derr) = sim.observables().double_occupancy();
            (rho, docc, derr)
        };
        let (rho_d, docc_d, err_d) = run(false);
        let (rho_c, docc_c, err_c) = run(true);
        assert!((rho_d - 1.0).abs() < 0.05 && (rho_c - 1.0).abs() < 0.05);
        // Same O(Δτ²) class: observables agree within a few σ + Trotter.
        assert!(
            (docc_d - docc_c).abs() < 0.01 + 4.0 * (err_d + err_c),
            "docc dense {docc_d}±{err_d} vs checkerboard {docc_c}±{err_c}"
        );
    }

    #[test]
    fn per_cluster_measurements_multiply_samples() {
        let model = ModelParams::new(Lattice::square(2, 2, 1.0), 4.0, 0.0, 0.125, 8);
        let base = SimParams::new(model)
            .with_sweeps(5, 10)
            .with_seed(41)
            .with_cluster_size(4)
            .with_bin_size(2);
        let mut once = Simulation::new(base.clone());
        once.run();
        let mut per = Simulation::new(base.with_measure_per_cluster(true));
        per.run();
        // L/k = 2 boundaries per sweep: one mid-sweep + one final record.
        assert_eq!(once.observables().count(), 10);
        assert_eq!(per.observables().count(), 20);
        // Same Markov chain (measurement never changes the walk).
        let (d1, _) = once.observables().density();
        let (d2, _) = per.observables().density();
        assert!((d1 - 1.0).abs() < 0.1 && (d2 - 1.0).abs() < 0.1);
    }

    #[test]
    fn unequal_time_disabled_by_default() {
        let sim = quick_sim(4.0, 10);
        assert!(sim.time_dependent().is_none());
    }
}
