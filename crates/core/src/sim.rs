//! Top-level simulation driver: warmup, measurement, reporting,
//! checkpoint/resume.

use crate::backend::ComputeBackend;
use crate::checkpoint::{self, CheckpointError};
use crate::hubbard::{SimParams, Spin};
use crate::measure::Observables;
use crate::profile::{phases, report, PhaseReport};
use crate::recovery::RecoveryLog;
use crate::sweep::DqmcCore;
use crate::tdm::{unequal_time_greens_stable, TimeDependentObs};
use linalg::Matrix;
use std::path::Path;
use util::{DqmcError, RunToken};

/// A complete DQMC simulation (the paper's 1000-warmup / 2000-measurement
/// runs are `run()` with the corresponding sweep counts).
#[derive(Debug)]
pub struct Simulation {
    pub(crate) core: DqmcCore,
    pub(crate) obs: Observables,
    pub(crate) tdm: Option<TimeDependentObs>,
    pub(crate) warmup_done: usize,
    pub(crate) measure_done: usize,
}

impl Simulation {
    /// Builds the simulation state (field initialisation + first Green's
    /// function evaluation happen here).
    pub fn new(params: SimParams) -> Self {
        let obs = Observables::new(&params.model, params.bin_size);
        let tdm = params.measure_unequal_time.then(|| {
            TimeDependentObs::new(
                &params.model.lattice,
                params.cluster_size,
                params.model.slices,
                params.model.dtau,
                params.bin_size,
            )
        });
        let core = DqmcCore::new(params);
        Simulation {
            core,
            obs,
            tdm,
            warmup_done: 0,
            measure_done: 0,
        }
    }

    /// Installs a compute backend (e.g. the `gpusim` device) for the heavy
    /// kernels. Builder form of [`DqmcCore::set_backend`].
    pub fn with_backend(mut self, backend: Box<dyn ComputeBackend>) -> Self {
        self.core.set_backend(backend);
        self
    }

    /// Runs the configured warmup and measurement sweeps.
    pub fn run(&mut self) {
        let (w, m) = (
            self.core.params.warmup_sweeps,
            self.core.params.measure_sweeps,
        );
        self.warmup(w);
        self.measure(m);
    }

    /// Runs the configured sweeps, writing a checkpoint to `path` every
    /// `every` sweeps and once more at the end. A run killed at any point
    /// can be picked up with [`Simulation::resume`] and finishes
    /// bit-identically to an uninterrupted one.
    pub fn run_with_checkpoints(
        &mut self,
        path: &Path,
        every: usize,
    ) -> Result<(), CheckpointError> {
        self.run_with_checkpoints_guarded(path, every, &RunToken::new())
    }

    /// [`Simulation::run_with_checkpoints`] under a liveness token: progress
    /// is stamped on the token at every sweep boundary (so a watchdog can
    /// tell a slow worker from a dead one), and when the token is cancelled
    /// the run *parks cooperatively* — it finishes the current sweep, writes
    /// one final checkpoint (the parked image a supervisor resurrects the
    /// job from) and returns early. Check [`Simulation::is_complete`] to
    /// distinguish a parked run from a finished one.
    pub fn run_with_checkpoints_guarded(
        &mut self,
        path: &Path,
        every: usize,
        token: &RunToken,
    ) -> Result<(), CheckpointError> {
        assert!(every >= 1, "checkpoint interval must be at least 1 sweep");
        while !self.is_complete() {
            let n = every.min(self.sweeps_remaining());
            let mut ran = 0;
            while ran < n && !token.is_cancelled() {
                self.step(1);
                token.tick();
                ran += 1;
            }
            checkpoint::save(self, path)?;
            if token.is_cancelled() {
                break;
            }
        }
        Ok(())
    }

    /// Advances the run by up to `n` sweeps, crossing the warmup/measurement
    /// phase boundary as needed, and returns the number actually executed
    /// (less than `n` only when the run completes).
    pub fn step(&mut self, n: usize) -> usize {
        let mut left = n;
        let warmup_left = self
            .core
            .params
            .warmup_sweeps
            .saturating_sub(self.warmup_done);
        let w = left.min(warmup_left);
        if w > 0 {
            self.warmup(w);
            left -= w;
        }
        let measure_left = self
            .core
            .params
            .measure_sweeps
            .saturating_sub(self.measure_done);
        let m = left.min(measure_left);
        if m > 0 {
            self.measure(m);
            left -= m;
        }
        n - left
    }

    /// True once every configured warmup and measurement sweep has run.
    pub fn is_complete(&self) -> bool {
        self.sweeps_remaining() == 0
    }

    /// Configured sweeps not yet executed (warmup + measurement).
    pub fn sweeps_remaining(&self) -> usize {
        self.core
            .params
            .warmup_sweeps
            .saturating_sub(self.warmup_done)
            + self
                .core
                .params
                .measure_sweeps
                .saturating_sub(self.measure_done)
    }

    /// Atomically writes the complete simulation state to `path`.
    pub fn checkpoint(&self, path: &Path) -> Result<(), CheckpointError> {
        checkpoint::save(self, path)
    }

    /// Rebuilds a simulation from a checkpoint written by
    /// [`Simulation::checkpoint`] / [`Simulation::run_with_checkpoints`].
    /// `params` must describe the same run (validated by fingerprint); the
    /// resumed chain continues bit-identically.
    pub fn resume(path: &Path, params: &SimParams) -> Result<Self, CheckpointError> {
        checkpoint::load(path, params)
    }

    /// The complete simulation state as an in-memory `DQCP` checkpoint image
    /// (the bytes [`Simulation::checkpoint`] would write). Preemptive
    /// schedulers park yielded jobs through this.
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        checkpoint::to_bytes(self)
    }

    /// Rebuilds a simulation from an image produced by
    /// [`Simulation::checkpoint_bytes`]; same validation and bit-identical
    /// continuation guarantee as [`Simulation::resume`].
    pub fn resume_bytes(bytes: &[u8], params: &SimParams) -> Result<Self, CheckpointError> {
        checkpoint::from_bytes(bytes, params)
    }

    /// Fallible [`Simulation::step`]: advances by up to `n` sweeps, stamping
    /// `token` at every sweep boundary, and surfaces classified sweep
    /// failures instead of panicking. On `Err` the counters reflect only the
    /// sweeps that completed; the aborted sweep's partial state must not be
    /// measured (supervisors resume from the last parked image instead).
    pub fn try_step(&mut self, n: usize, token: &RunToken) -> Result<usize, DqmcError> {
        let mut done = 0;
        while done < n && !self.is_complete() {
            if self.warmup_done < self.core.params.warmup_sweeps {
                self.core.try_sweep(None)?;
                self.warmup_done += 1;
            } else {
                self.try_measure_one()?;
            }
            token.tick();
            done += 1;
        }
        Ok(done)
    }

    /// Runs `n` thermalisation sweeps (no measurements).
    pub fn warmup(&mut self, n: usize) {
        for _ in 0..n {
            self.core.sweep(None);
        }
        self.warmup_done += n;
    }

    /// One fallible measurement sweep (dynamic measurements included).
    fn try_measure_one(&mut self) -> Result<(), DqmcError> {
        self.core.try_sweep(Some(&mut self.obs))?;
        self.finish_measure_sweep();
        Ok(())
    }

    /// Sweep-end bookkeeping of a measurement sweep once the equal-time
    /// record has been taken (by [`DqmcCore::try_sweep`] here, or by the
    /// crowd driver in lockstep mode): the dynamic measurement and the
    /// counter bump. Shared with [`crate::crowd::Crowd`] so crowd and solo
    /// runs take bit-identical measurements.
    pub(crate) fn finish_measure_sweep(&mut self) {
        if let Some(tdm) = self.tdm.as_mut() {
            // Dynamic measurements via the stable block-matrix TDGF
            // (accurate at any β; see `tdm` module docs for why the
            // forward UDT propagation is not used here). The τ grid is
            // pinned to the *configured* cluster size: adaptive shrinks
            // change the sweep cadence but must not change the grid.
            let t0 = std::time::Instant::now();
            let k = self.core.params.cluster_size;
            let gu = unequal_time_greens_stable(&self.core.fac, &self.core.h, k, Spin::Up);
            let gd = unequal_time_greens_stable(&self.core.fac, &self.core.h, k, Spin::Down);
            tdm.record(&gu, &gd, self.core.sign);
            self.core.timer.add(phases::MEASUREMENT, t0.elapsed());
        }
        self.measure_done += 1;
    }

    /// Runs `n` measurement sweeps.
    pub fn measure(&mut self, n: usize) {
        for _ in 0..n {
            if let Err(e) = self.try_measure_one() {
                panic!("{e}");
            }
        }
    }

    /// Time-dependent observables, when enabled via
    /// [`SimParams::with_unequal_time`].
    pub fn time_dependent(&self) -> Option<&TimeDependentObs> {
        self.tdm.as_ref()
    }

    /// Accumulated observables.
    pub fn observables(&self) -> &Observables {
        &self.obs
    }

    /// Simulation parameters.
    pub fn params(&self) -> &SimParams {
        &self.core.params
    }

    /// Sweeps completed as `(warmup, measurement)`.
    pub fn sweeps_done(&self) -> (usize, usize) {
        (self.warmup_done, self.measure_done)
    }

    /// Metropolis acceptance rate.
    pub fn acceptance_rate(&self) -> f64 {
        self.core.acceptance_rate()
    }

    /// Modeled device-seconds consumed by the installed backend (`0.0` on
    /// the host backend, which has no device clock).
    pub fn device_seconds(&self) -> f64 {
        self.core.backend.device_seconds()
    }

    /// Current Green's function for a spin (canonical position).
    pub fn greens(&self, spin: Spin) -> &Matrix {
        self.core.greens(spin)
    }

    /// Largest observed wrap-vs-recompute relative difference.
    pub fn max_wrap_error(&self) -> f64 {
        let m = self.core.wrap_diff.max();
        if m.is_finite() {
            m
        } else {
            0.0
        }
    }

    /// The recovery incident log (retries, shrinks, fallbacks, repairs).
    pub fn recovery_log(&self) -> &RecoveryLog {
        self.core.recovery_log()
    }

    /// Table I style phase breakdown of the time spent so far.
    pub fn phase_report(&self) -> PhaseReport {
        report(&self.core.timer)
    }

    /// Cluster cache `(rebuilds, hits)` — recycling effectiveness.
    pub fn cache_stats(&self) -> (usize, usize) {
        self.core.cache.stats()
    }

    /// Access to the underlying engine (benchmarks and tests).
    pub fn core_mut(&mut self) -> &mut DqmcCore {
        &mut self.core
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hubbard::ModelParams;
    use lattice::Lattice;

    fn quick_sim(u: f64, seed: u64) -> Simulation {
        let model = ModelParams::new(Lattice::square(2, 2, 1.0), u, 0.0, 0.125, 8);
        Simulation::new(
            SimParams::new(model)
                .with_sweeps(10, 20)
                .with_seed(seed)
                .with_cluster_size(4) // two clusters, so recycling can hit
                .with_bin_size(2),
        )
    }

    #[test]
    fn run_produces_measurements() {
        let mut sim = quick_sim(4.0, 1);
        sim.run();
        assert_eq!(sim.sweeps_done(), (10, 20));
        assert_eq!(sim.observables().count(), 20);
        let (s, _) = sim.observables().avg_sign();
        assert_eq!(s, 1.0);
    }

    #[test]
    fn half_filling_density_near_one() {
        let mut sim = quick_sim(4.0, 2);
        sim.run();
        let (rho, err) = sim.observables().density();
        // Particle-hole symmetry pins ρ = 1 exactly in expectation.
        assert!((rho - 1.0).abs() < 0.05 + 3.0 * err, "rho {rho} ± {err}");
    }

    #[test]
    fn repulsion_suppresses_double_occupancy() {
        let mut free = quick_sim(0.0, 3);
        free.run();
        let mut interacting = quick_sim(8.0, 3);
        interacting.run();
        let (d0, _) = free.observables().double_occupancy();
        let (d8, _) = interacting.observables().double_occupancy();
        assert!(
            d8 < d0 - 0.02,
            "U should suppress double occupancy: {d8} !< {d0}"
        );
    }

    #[test]
    fn phase_report_sums_to_hundred() {
        let mut sim = quick_sim(4.0, 4);
        sim.run();
        let rep = sim.phase_report();
        let total_pct: f64 = rep.rows.iter().map(|(_, _, p)| p).sum();
        assert!((total_pct - 100.0).abs() < 1e-6, "{total_pct}");
        assert!(rep.total > 0.0);
    }

    #[test]
    fn recycling_hits_accumulate() {
        let mut sim = quick_sim(4.0, 5);
        sim.run();
        let (rebuilds, hits) = sim.cache_stats();
        assert!(rebuilds > 0);
        assert!(hits > 0, "recycling should produce cache hits");
    }

    #[test]
    fn wrap_error_stays_tiny_on_small_system() {
        let mut sim = quick_sim(6.0, 6);
        sim.run();
        assert!(sim.max_wrap_error() < 1e-6, "{}", sim.max_wrap_error());
    }

    #[test]
    fn unequal_time_measurements_recorded() {
        let model = ModelParams::new(Lattice::square(2, 2, 1.0), 4.0, 0.0, 0.125, 8);
        let mut sim = Simulation::new(
            SimParams::new(model)
                .with_sweeps(5, 10)
                .with_seed(9)
                .with_cluster_size(4)
                .with_unequal_time(true),
        );
        sim.run();
        let tdm = sim.time_dependent().expect("enabled");
        assert_eq!(tdm.count(), 10);
        let gloc = tdm.gloc();
        assert_eq!(gloc.len(), 3); // τ = 0, β/2, β
                                   // Anti-periodicity in the trace: G_loc(0) + G_loc(β) =
                                   // Tr(G + (I−G))/N / spin-avg = 1.
        let sum = gloc[0].0 + gloc[2].0;
        assert!((sum - 1.0).abs() < 1e-8, "G(0)+G(beta) = {sum}");
        // G decays away from τ = 0 at half filling.
        assert!(gloc[1].0 < gloc[0].0);
    }

    #[test]
    fn checkerboard_gives_same_physics_within_trotter() {
        let run = |cb: bool| {
            let model = ModelParams::new(Lattice::square(4, 4, 1.0), 4.0, 0.0, 0.1, 20);
            let mut sim = Simulation::new(
                SimParams::new(model)
                    .with_sweeps(20, 60)
                    .with_seed(31)
                    .with_checkerboard(cb),
            );
            sim.run();
            let (rho, _) = sim.observables().density();
            let (docc, derr) = sim.observables().double_occupancy();
            (rho, docc, derr)
        };
        let (rho_d, docc_d, err_d) = run(false);
        let (rho_c, docc_c, err_c) = run(true);
        assert!((rho_d - 1.0).abs() < 0.05 && (rho_c - 1.0).abs() < 0.05);
        // Same O(Δτ²) class: observables agree within a few σ + Trotter.
        assert!(
            (docc_d - docc_c).abs() < 0.01 + 4.0 * (err_d + err_c),
            "docc dense {docc_d}±{err_d} vs checkerboard {docc_c}±{err_c}"
        );
    }

    #[test]
    fn per_cluster_measurements_multiply_samples() {
        let model = ModelParams::new(Lattice::square(2, 2, 1.0), 4.0, 0.0, 0.125, 8);
        let base = SimParams::new(model)
            .with_sweeps(5, 10)
            .with_seed(41)
            .with_cluster_size(4)
            .with_bin_size(2);
        let mut once = Simulation::new(base.clone());
        once.run();
        let mut per = Simulation::new(base.with_measure_per_cluster(true));
        per.run();
        // L/k = 2 boundaries per sweep: one mid-sweep + one final record.
        assert_eq!(once.observables().count(), 10);
        assert_eq!(per.observables().count(), 20);
        // Same Markov chain (measurement never changes the walk).
        let (d1, _) = once.observables().density();
        let (d2, _) = per.observables().density();
        assert!((d1 - 1.0).abs() < 0.1 && (d2 - 1.0).abs() < 0.1);
    }

    #[test]
    fn unequal_time_disabled_by_default() {
        let sim = quick_sim(4.0, 10);
        assert!(sim.time_dependent().is_none());
    }

    #[test]
    fn step_crosses_phase_boundary_identically_to_run() {
        let mut whole = quick_sim(4.0, 11);
        whole.run();
        let mut stepped = quick_sim(4.0, 11);
        let mut total = 0;
        while !stepped.is_complete() {
            total += stepped.step(7); // 7 ∤ 10 and 7 ∤ 30: boundary crossed mid-step
        }
        assert_eq!(total, 30);
        assert_eq!(stepped.step(5), 0, "stepping a complete run is a no-op");
        assert_eq!(stepped.sweeps_done(), whole.sweeps_done());
        assert_eq!(stepped.core.h, whole.core.h);
        assert_eq!(stepped.core.rng.state(), whole.core.rng.state());
        assert_eq!(stepped.core.g[0].max_abs_diff(&whole.core.g[0]), 0.0);
        assert_eq!(stepped.observables().count(), whole.observables().count());
    }

    #[test]
    fn checkpoint_resume_continues_bit_identically() {
        let dir = std::env::temp_dir().join(format!("dqmc-sim-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mid.dqcp");

        let mut whole = quick_sim(4.0, 12);
        whole.run();

        let mut first = quick_sim(4.0, 12);
        first.step(13);
        first.checkpoint(&path).unwrap();
        drop(first); // "kill" the first process

        let mut resumed = Simulation::resume(&path, quick_sim(4.0, 12).params()).unwrap();
        while !resumed.is_complete() {
            resumed.step(4);
        }
        assert_eq!(resumed.sweeps_done(), whole.sweeps_done());
        assert_eq!(resumed.core.h, whole.core.h);
        assert_eq!(resumed.core.rng.state(), whole.core.rng.state());
        assert_eq!(resumed.core.g[0].max_abs_diff(&whole.core.g[0]), 0.0);
        assert_eq!(resumed.core.g[1].max_abs_diff(&whole.core.g[1]), 0.0);
        assert_eq!(resumed.core.sign, whole.core.sign);
        assert_eq!(resumed.core.accepted, whole.core.accepted);
        let (d1, e1) = resumed.observables().density();
        let (d2, e2) = whole.observables().density();
        assert_eq!(d1.to_bits(), d2.to_bits());
        assert_eq!(e1.to_bits(), e2.to_bits());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn try_step_matches_step_and_stamps_token() {
        let mut plain = quick_sim(4.0, 14);
        while !plain.is_complete() {
            plain.step(7);
        }
        let mut guarded = quick_sim(4.0, 14);
        let token = RunToken::new();
        let mut total = 0;
        while !guarded.is_complete() {
            total += guarded.try_step(7, &token).unwrap();
        }
        assert_eq!(total, 30);
        assert_eq!(token.progress(), 30, "one stamp per sweep");
        assert_eq!(guarded.sweeps_done(), plain.sweeps_done());
        assert_eq!(guarded.core.h, plain.core.h);
        assert_eq!(guarded.core.rng.state(), plain.core.rng.state());
        assert_eq!(guarded.observables().count(), plain.observables().count());
    }

    #[test]
    fn guarded_run_parks_on_cancel_and_resumes_bit_identically() {
        let dir = std::env::temp_dir().join(format!("dqmc-sim-park-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("park.dqcp");

        let mut whole = quick_sim(4.0, 15);
        whole.run();

        // Park: a cancelled token makes the guarded loop write one final
        // image and return with the run incomplete.
        let mut parked = quick_sim(4.0, 15);
        parked.step(13);
        let token = RunToken::new();
        token.cancel();
        parked
            .run_with_checkpoints_guarded(&path, 4, &token)
            .unwrap();
        assert!(!parked.is_complete(), "cancelled run must park, not finish");

        // Resurrect from the parked image and finish: bit-identical.
        let mut resumed = Simulation::resume(&path, parked.params()).unwrap();
        assert_eq!(resumed.sweeps_done(), parked.sweeps_done());
        while !resumed.is_complete() {
            resumed.step(4);
        }
        assert_eq!(resumed.core.h, whole.core.h);
        assert_eq!(resumed.core.rng.state(), whole.core.rng.state());
        assert_eq!(resumed.core.g[0].max_abs_diff(&whole.core.g[0]), 0.0);
        let (d1, _) = resumed.observables().density();
        let (d2, _) = whole.observables().density();
        assert_eq!(d1.to_bits(), d2.to_bits());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_with_checkpoints_completes_and_persists() {
        let dir = std::env::temp_dir().join(format!("dqmc-sim-rwc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("auto.dqcp");
        let mut sim = quick_sim(4.0, 13);
        sim.run_with_checkpoints(&path, 8).unwrap();
        assert!(sim.is_complete());
        // The final checkpoint loads and reports a complete run.
        let loaded = Simulation::resume(&path, quick_sim(4.0, 13).params()).unwrap();
        assert!(loaded.is_complete());
        assert_eq!(loaded.sweeps_done(), sim.sweeps_done());
        std::fs::remove_dir_all(&dir).ok();
    }
}
