//! The Hubbard–Stratonovich (HS) auxiliary field.
//!
//! One Ising variable `h_{l,i} = ±1` per (time slice, site) pair decouples
//! the quartic interaction. The Metropolis walk of Algorithm 1 visits and
//! proposes to flip every element once per sweep.

use util::Rng;

/// The discrete HS field `h ∈ {−1, +1}^{L×N}`, stored slice-major.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HsField {
    nsites: usize,
    slices: usize,
    h: Vec<i8>,
}

impl HsField {
    /// All-up field (deterministic start, useful in tests).
    pub fn ones(nsites: usize, slices: usize) -> Self {
        HsField {
            nsites,
            slices,
            h: vec![1; nsites * slices],
        }
    }

    /// Uniformly random initial configuration.
    pub fn random(nsites: usize, slices: usize, rng: &mut Rng) -> Self {
        let h = (0..nsites * slices).map(|_| rng.next_sign()).collect();
        HsField { nsites, slices, h }
    }

    /// Number of sites `N`.
    pub fn nsites(&self) -> usize {
        self.nsites
    }

    /// Number of time slices `L`.
    pub fn slices(&self) -> usize {
        self.slices
    }

    /// Value `h_{l,i}` as ±1.0.
    #[inline]
    pub fn get(&self, l: usize, i: usize) -> f64 {
        debug_assert!(l < self.slices && i < self.nsites);
        self.h[l * self.nsites + i] as f64
    }

    /// Flips `h_{l,i}` in place.
    #[inline]
    pub fn flip(&mut self, l: usize, i: usize) {
        debug_assert!(l < self.slices && i < self.nsites);
        let v = &mut self.h[l * self.nsites + i];
        *v = -*v;
    }

    /// The whole slice `l` as ±1.0 values (length `N`).
    pub fn slice_values(&self, l: usize) -> Vec<f64> {
        debug_assert!(l < self.slices);
        self.h[l * self.nsites..(l + 1) * self.nsites]
            .iter()
            .map(|&v| v as f64)
            .collect()
    }

    /// Net magnetisation of the field, `Σ h / (LN)` — handy diagnostics.
    pub fn mean(&self) -> f64 {
        self.h.iter().map(|&v| v as i64).sum::<i64>() as f64 / self.h.len() as f64
    }

    /// Serializes the field (dims then one byte per Ising variable) for
    /// checkpointing.
    pub fn encode(&self, w: &mut util::codec::ByteWriter) {
        w.put_u32(self.nsites as u32);
        w.put_u32(self.slices as u32);
        for &v in &self.h {
            w.put_u8(v as u8);
        }
    }

    /// Deserializes a field written by [`HsField::encode`]. Any byte that is
    /// not ±1 decodes to [`util::codec::CodecError::Invalid`] — a corrupt
    /// field must never enter a simulation.
    pub fn decode(r: &mut util::codec::ByteReader<'_>) -> Result<Self, util::codec::CodecError> {
        let nsites = r.get_u32()? as usize;
        let slices = r.get_u32()? as usize;
        let len = nsites.checked_mul(slices).ok_or_else(|| {
            util::codec::CodecError::Invalid("HS field dimensions overflow".into())
        })?;
        let bytes = r.get_bytes(len)?;
        let mut h = Vec::with_capacity(len);
        for (i, &b) in bytes.iter().enumerate() {
            let v = b as i8;
            if v != 1 && v != -1 {
                return Err(util::codec::CodecError::Invalid(format!(
                    "HS field byte {i} is {v}, expected ±1"
                )));
            }
            h.push(v);
        }
        Ok(HsField { nsites, slices, h })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ones_field() {
        let f = HsField::ones(4, 3);
        assert_eq!(f.nsites(), 4);
        assert_eq!(f.slices(), 3);
        for l in 0..3 {
            for i in 0..4 {
                assert_eq!(f.get(l, i), 1.0);
            }
        }
        assert_eq!(f.mean(), 1.0);
    }

    #[test]
    fn flip_is_involution() {
        let mut f = HsField::ones(4, 2);
        f.flip(1, 2);
        assert_eq!(f.get(1, 2), -1.0);
        assert_eq!(f.get(1, 1), 1.0);
        assert_eq!(f.get(0, 2), 1.0);
        f.flip(1, 2);
        assert_eq!(f, HsField::ones(4, 2));
    }

    #[test]
    fn random_field_is_balanced_and_seeded() {
        let mut rng = util::Rng::new(3);
        let f = HsField::random(50, 40, &mut rng);
        assert!(f.mean().abs() < 0.1);
        let mut rng2 = util::Rng::new(3);
        let f2 = HsField::random(50, 40, &mut rng2);
        assert_eq!(f, f2);
    }

    #[test]
    fn codec_round_trip_and_validation() {
        let mut rng = util::Rng::new(9);
        let f = HsField::random(6, 5, &mut rng);
        let mut w = util::codec::ByteWriter::new();
        f.encode(&mut w);
        let bytes = w.into_bytes();
        let got = HsField::decode(&mut util::codec::ByteReader::new(&bytes)).unwrap();
        assert_eq!(got, f);
        // A non-±1 byte is rejected cleanly.
        let mut bad = bytes.clone();
        bad[8] = 3;
        assert!(HsField::decode(&mut util::codec::ByteReader::new(&bad)).is_err());
        // Truncation is a clean error too.
        assert!(HsField::decode(&mut util::codec::ByteReader::new(&bytes[..10])).is_err());
    }

    #[test]
    fn slice_values_extract() {
        let mut f = HsField::ones(3, 2);
        f.flip(1, 0);
        assert_eq!(f.slice_values(0), vec![1.0, 1.0, 1.0]);
        assert_eq!(f.slice_values(1), vec![-1.0, 1.0, 1.0]);
    }
}
