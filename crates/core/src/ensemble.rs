//! Ensemble parallelism: independent Markov chains in parallel.
//!
//! The paper parallelises *inside* the linear algebra because a single
//! Markov chain is inherently sequential. The complementary axis — running
//! several independent chains with different seeds and pooling their
//! measurements — costs no communication at all and multiplies statistics
//! linearly in core count. This module provides that: each chain is a full
//! [`Simulation`] with its own warmup (so chains are independently
//! thermalised), run on the Rayon pool, with the accumulated observables
//! merged bin-wise at the end.

use crate::crowd::Crowd;
use crate::hubbard::SimParams;
use crate::measure::Observables;
use crate::recovery::RecoveryLog;
use crate::sim::Simulation;
use rayon::prelude::*;

/// Result of an ensemble run.
#[derive(Debug)]
pub struct EnsembleResult {
    /// Pooled observables across all chains.
    pub observables: Observables,
    /// Per-chain acceptance rates (diagnostics).
    pub acceptance_rates: Vec<f64>,
    /// Largest wrap error seen by any chain.
    pub max_wrap_error: f64,
    /// Per-chain recovery logs, indexed like `acceptance_rates`: what the
    /// fault-tolerance ladder did inside each chain, surfaced so ensemble
    /// runs report healing the same way [`Simulation::recovery_log`] does.
    pub recovery_logs: Vec<RecoveryLog>,
}

impl EnsembleResult {
    /// Recovery incidents summed over all chains.
    pub fn total_recovery_events(&self) -> u64 {
        self.recovery_logs.iter().map(RecoveryLog::total).sum()
    }
}

/// The seed for chain `chain` of grid point `point` under base seed `base`.
///
/// Both [`run_ensemble`] (`point = 0`) and the sweep scheduler (one `point`
/// per grid coordinate) derive chain seeds through this single function, so
/// an ensemble run at a grid point and the scheduler's run of the same point
/// sample identical Markov chains. The hash-split (see
/// [`util::rng::derive_seed`]) is what makes adjacent grid points safe: the
/// old additive `seed + chain` scheme handed chain 1 of seed `s` and chain 0
/// of seed `s + 1` the *same* generator.
pub fn chain_seed(base: u64, point: u64, chain: u64) -> u64 {
    util::rng::derive_seed(base, point, chain)
}

/// Runs `chains` independent simulations with hash-split per-chain seeds
/// (see [`chain_seed`]) and merges their measurements.
///
/// Panics if `chains == 0`. Deterministic: the result is a pure function of
/// `(params, chains)` regardless of scheduling.
pub fn run_ensemble(params: &SimParams, chains: usize) -> EnsembleResult {
    assert!(chains >= 1, "need at least one chain");
    // Chains are the coarse grain of the hierarchy: each chain pins the
    // linalg kernels it drives to their serial branch so C chains never
    // stack kernel fan-out on the one global rayon pool (lint rule R9).
    // Bit-identical either way: par and serial kernel branches agree, and
    // chain seeds are scheduling-independent.
    let run_chain = |c: usize| {
        let _serial_kernels = linalg::enter_worker_scope();
        let p = params
            .clone()
            .with_seed(chain_seed(params.seed, 0, c as u64));
        let mut sim = Simulation::new(p);
        sim.run();
        sim
    };
    let sims: Vec<Simulation> = if linalg::par_enabled(true) {
        (0..chains).into_par_iter().map(run_chain).collect()
    } else {
        (0..chains).map(run_chain).collect()
    };

    let mut iter = sims.into_iter();
    let first = iter.next().expect("chains >= 1");
    let mut acceptance_rates = vec![first.acceptance_rate()];
    let mut max_wrap_error = first.max_wrap_error();
    let mut recovery_logs = vec![first.recovery_log().clone()];
    let mut observables = first.observables().clone();
    for sim in iter {
        observables.merge(sim.observables());
        acceptance_rates.push(sim.acceptance_rate());
        max_wrap_error = max_wrap_error.max(sim.max_wrap_error());
        recovery_logs.push(sim.recovery_log().clone());
    }
    EnsembleResult {
        observables,
        acceptance_rates,
        max_wrap_error,
        recovery_logs,
    }
}

/// Crowd-batched ensemble: the same chains as [`run_ensemble`], organized
/// into crowds of up to `crowd_size` walkers stepped in lockstep (see
/// [`crate::crowd`]).
///
/// Chain `c` receives the identical [`chain_seed`] it gets from
/// [`run_ensemble`] and every crowd kernel is bit-identical to its solo
/// form, so the result is byte-for-byte the same for **any** `crowd_size` —
/// crowds change only the batching economics (one launch per crowd instead
/// of per walker on a batched backend), never the statistics. Merge order
/// is chain order, independent of crowd grouping.
///
/// Panics if `chains == 0` or `crowd_size == 0`.
pub fn run_ensemble_crowd(params: &SimParams, chains: usize, crowd_size: usize) -> EnsembleResult {
    assert!(chains >= 1, "need at least one chain");
    assert!(crowd_size >= 1, "need a positive crowd size");
    let ncrowds = chains.div_ceil(crowd_size);
    // Crowds are the coarse grain here, exactly as chains are in
    // run_ensemble: each crowd task pins its kernels serial (rule R9).
    let run_crowd = |k: usize| {
        let _serial_kernels = linalg::enter_worker_scope();
        let c0 = k * crowd_size;
        let width = crowd_size.min(chains - c0);
        let ps: Vec<SimParams> = (c0..c0 + width)
            .map(|c| {
                params
                    .clone()
                    .with_seed(chain_seed(params.seed, 0, c as u64))
            })
            .collect();
        let mut crowd = Crowd::new(ps);
        crowd.run();
        crowd
    };
    let crowds: Vec<Crowd> = if linalg::par_enabled(true) {
        (0..ncrowds).into_par_iter().map(run_crowd).collect()
    } else {
        (0..ncrowds).map(run_crowd).collect()
    };

    let mut acceptance_rates = Vec::with_capacity(chains);
    let mut recovery_logs = Vec::with_capacity(chains);
    let mut max_wrap_error = 0.0f64;
    let mut observables: Option<Observables> = None;
    for crowd in &crowds {
        for sim in crowd.walkers() {
            match observables.as_mut() {
                None => observables = Some(sim.observables().clone()),
                Some(obs) => obs.merge(sim.observables()),
            }
            acceptance_rates.push(sim.acceptance_rate());
            max_wrap_error = max_wrap_error.max(sim.max_wrap_error());
            recovery_logs.push(sim.recovery_log().clone());
        }
    }
    EnsembleResult {
        observables: observables.expect("chains >= 1"),
        acceptance_rates,
        max_wrap_error,
        recovery_logs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hubbard::ModelParams;
    use lattice::Lattice;

    fn params() -> SimParams {
        let model = ModelParams::new(Lattice::square(2, 2, 1.0), 4.0, 0.0, 0.125, 8);
        SimParams::new(model)
            .with_sweeps(10, 20)
            .with_seed(100)
            .with_cluster_size(4)
            .with_bin_size(2)
    }

    #[test]
    fn pools_counts_across_chains() {
        let res = run_ensemble(&params(), 3);
        assert_eq!(res.observables.count(), 60);
        assert_eq!(res.acceptance_rates.len(), 3);
        // Chains differ (different seeds) but all behave.
        for &r in &res.acceptance_rates {
            assert!(r > 0.05 && r < 0.99);
        }
        assert!(res.max_wrap_error < 1e-6);
        // Fault-free chains surface empty (but present) recovery logs.
        assert_eq!(res.recovery_logs.len(), 3);
        assert_eq!(res.total_recovery_events(), 0);
    }

    #[test]
    fn chain_seeds_do_not_collide_across_adjacent_base_seeds() {
        // The regression the hash-split fixes: stepping the base seed by one
        // (adjacent grid points, re-submitted campaigns) must not replay any
        // chain of the previous base.
        let mut seen = std::collections::HashSet::new();
        for base in [100u64, 101, 102, 103] {
            for c in 0..4u64 {
                assert!(seen.insert(chain_seed(base, 0, c)), "base {base} chain {c}");
            }
        }
    }

    #[test]
    fn ensemble_is_deterministic() {
        let a = run_ensemble(&params(), 2);
        let b = run_ensemble(&params(), 2);
        let (da, _) = a.observables.double_occupancy();
        let (db, _) = b.observables.double_occupancy();
        assert_eq!(da, db);
    }

    #[test]
    fn merged_mean_is_chain_average() {
        // Pooled estimate equals the bin-weighted average of single chains.
        let p = params();
        let pooled = run_ensemble(&p, 2);
        let solo: Vec<f64> = (0..2)
            .map(|c| {
                let mut sim = Simulation::new(p.clone().with_seed(chain_seed(p.seed, 0, c)));
                sim.run();
                sim.observables().double_occupancy().0
            })
            .collect();
        let (dp, _) = pooled.observables.double_occupancy();
        let avg = (solo[0] + solo[1]) / 2.0;
        // Equal bin counts per chain ⇒ exact average (up to ratio-estimator
        // nonlinearity in the sign, which is exactly 1 at half filling).
        assert!((dp - avg).abs() < 1e-12, "{dp} vs {avg}");
    }

    #[test]
    fn crowd_ensemble_is_bit_identical_for_every_crowd_size() {
        // Crowd size is a throughput knob, not a physics knob: pooled
        // observables are byte-identical whether 5 chains run solo, in
        // crowds of 2 (last crowd ragged), or in one crowd of 8 (capped at
        // the chain count).
        let p = params();
        let solo = run_ensemble(&p, 5);
        let (ds, es) = solo.observables.double_occupancy();
        for crowd_size in [1, 2, 8] {
            let crowd = run_ensemble_crowd(&p, 5, crowd_size);
            let (dc, ec) = crowd.observables.double_occupancy();
            assert_eq!(ds.to_bits(), dc.to_bits(), "crowd size {crowd_size}");
            assert_eq!(es.to_bits(), ec.to_bits(), "crowd size {crowd_size}");
            assert_eq!(solo.acceptance_rates, crowd.acceptance_rates);
            assert_eq!(
                solo.max_wrap_error.to_bits(),
                crowd.max_wrap_error.to_bits()
            );
        }
    }

    #[test]
    fn more_chains_tighter_errors() {
        let small = run_ensemble(&params(), 1);
        let big = run_ensemble(&params(), 4);
        let (_, e1) = small.observables.double_occupancy();
        let (_, e4) = big.observables.double_occupancy();
        assert!(
            e4 < e1,
            "4 chains should beat 1 chain statistically: {e4} !< {e1}"
        );
    }
}
