//! B-matrix construction and matrix clustering (§III-A2 of the paper).
//!
//! `B_{l,σ} = e^{−ΔτK} · V_{l,σ}` with `V_{l,σ} = diag(e^{σν h_{l,i}})`.
//! The exponentials `e^{∓ΔτK}` are fixed for the whole simulation and
//! computed once (analytically, via the lattice's Kronecker structure).
//!
//! Note on factor order: the paper's Eq. (2) displays `V·e^{−ΔτK}`, but its
//! update scheme — Metropolis ratio `1 + α(1 − G_ii)` against the *canonical*
//! G followed by wrapping — is only exact when the potential factor sits on
//! the right, so that flipping `h_{l,i}` produces the rank-1 column change
//! `M' = M + α(M − I)e_i e_iᵀ`. The two orderings are cyclic rearrangements
//! of the same Trotter product with identical O(Δτ²) accuracy; we adopt the
//! one that makes the printed update formulas exact.
//!
//! A *cluster* is the product of `k` consecutive B matrices; working with
//! `L_k = L/k` clusters cuts the number of stratification iterations — and
//! their pivoted QRs — by a factor `k`.

use crate::hs::HsField;
use crate::hubbard::{ModelParams, Spin};
use linalg::blas3::{gemm, Op};
use linalg::{scale, workspace, Matrix};

/// Precomputed kinetic exponentials plus the B-matrix operations built on
/// them. Does not own the HS field: callers pass the current field so the
/// factory stays valid across Metropolis updates.
#[derive(Clone, Debug)]
pub struct BMatrixFactory {
    n: usize,
    nu: f64,
    expk: Matrix,
    expk_inv: Matrix,
}

impl BMatrixFactory {
    /// Builds the factory for a model (computes `e^{∓ΔτK}` exactly via the
    /// lattice's separable structure).
    pub fn new(model: &ModelParams) -> Self {
        let (expk, expk_inv) = model.lattice.expk(model.dtau, model.mu_tilde);
        BMatrixFactory {
            n: model.nsites(),
            nu: model.nu(),
            expk,
            expk_inv,
        }
    }

    /// Builds the factory with the **checkerboard** kinetic operator:
    /// `e^{−ΔτK}` is replaced by the split-bond product
    /// `e^{Δτμ̃}·Π_c e^{−ΔτK_c}` (QUEST's large-lattice mode). The product
    /// and its exact inverse are materialised once, so every downstream
    /// code path is unchanged; the simulated Hamiltonian differs from the
    /// exact-exponential one by the same O(Δτ²) the Trotter discretisation
    /// already carries.
    pub fn new_checkerboard(model: &ModelParams) -> Self {
        let cb = lattice::Checkerboard::new(&model.lattice);
        let (expk, expk_inv) = cb.dense_pair(model.dtau, model.mu_tilde);
        BMatrixFactory {
            n: model.nsites(),
            nu: model.nu(),
            expk,
            expk_inv,
        }
    }

    /// Number of sites.
    pub fn nsites(&self) -> usize {
        self.n
    }

    /// The HS coupling ν.
    pub fn nu(&self) -> f64 {
        self.nu
    }

    /// `e^{−ΔτK}` (shared by every B matrix).
    pub fn expk(&self) -> &Matrix {
        &self.expk
    }

    /// `e^{+ΔτK}`.
    pub fn expk_inv(&self) -> &Matrix {
        &self.expk_inv
    }

    /// Diagonal of `V_{l,σ}`: `v_i = e^{σν h_{l,i}}`.
    pub fn v_diag(&self, h: &HsField, l: usize, spin: Spin) -> Vec<f64> {
        let mut v = workspace::take(self.n);
        self.v_diag_into(h, l, spin, &mut v);
        v
    }

    /// Writes the diagonal of `V_{l,σ}` into `out` (length `n`) without
    /// allocating.
    pub fn v_diag_into(&self, h: &HsField, l: usize, spin: Spin, out: &mut [f64]) {
        assert_eq!(out.len(), self.n);
        let s = spin.sign() * self.nu;
        for (i, o) in out.iter_mut().enumerate() {
            *o = (s * h.get(l, i)).exp();
        }
    }

    /// Explicit `B_{l,σ} = e^{−ΔτK} V` (a column scaling of `e^{−ΔτK}`).
    pub fn b_matrix(&self, h: &HsField, l: usize, spin: Spin) -> Matrix {
        let mut b = self.expk.clone();
        let v = self.v_diag(h, l, spin);
        scale::col_scale(&v, &mut b);
        workspace::put(v);
        b
    }

    /// `M ← B_{l,σ} · M = e^{−ΔτK}(V·M)` without materialising B: a parallel
    /// row scaling (the paper's §IV-B kernel) followed by a GEMM.
    pub fn b_mul_left(&self, h: &HsField, l: usize, spin: Spin, m: &Matrix) -> Matrix {
        let mut out = workspace::take_matrix(self.n, m.ncols());
        self.b_mul_left_into(h, l, spin, m, &mut out);
        out
    }

    /// `out ← B_{l,σ} · M` without allocating: scratch comes from the
    /// workspace arena. `out` must be `n × M.ncols()`.
    pub fn b_mul_left_into(&self, h: &HsField, l: usize, spin: Spin, m: &Matrix, out: &mut Matrix) {
        assert_eq!(m.nrows(), self.n);
        assert!(out.nrows() == self.n && out.ncols() == m.ncols());
        let mut vm = workspace::take_matrix(m.nrows(), m.ncols());
        m.copy_submatrix_into(0, 0, &mut vm);
        let mut v = workspace::take(self.n);
        self.v_diag_into(h, l, spin, &mut v);
        scale::row_scale(&v, &mut vm);
        workspace::put(v);
        gemm(1.0, &self.expk, Op::NoTrans, &vm, Op::NoTrans, 0.0, out);
        workspace::put_matrix(vm);
    }

    /// `M ← M · B_{l,σ}⁻¹`; used by wrapping.
    ///
    /// `B⁻¹ = V⁻¹ e^{+ΔτK}`, so `M B⁻¹ = (M · diag(1/v)) e^{+ΔτK}`.
    pub fn b_inv_mul_right(&self, h: &HsField, l: usize, spin: Spin, m: &Matrix) -> Matrix {
        let mut out = workspace::take_matrix(m.nrows(), self.n);
        self.b_inv_mul_right_into(h, l, spin, m, &mut out);
        out
    }

    /// `out ← M · B_{l,σ}⁻¹` without allocating. `out` must be
    /// `M.nrows() × n`.
    pub fn b_inv_mul_right_into(
        &self,
        h: &HsField,
        l: usize,
        spin: Spin,
        m: &Matrix,
        out: &mut Matrix,
    ) {
        assert_eq!(m.ncols(), self.n);
        assert!(out.nrows() == m.nrows() && out.ncols() == self.n);
        let mut vinv = workspace::take(self.n);
        self.v_diag_into(h, l, spin, &mut vinv);
        for v in vinv.iter_mut() {
            *v = 1.0 / *v;
        }
        let mut mv = workspace::take_matrix(m.nrows(), m.ncols());
        m.copy_submatrix_into(0, 0, &mut mv);
        scale::col_scale(&vinv, &mut mv);
        workspace::put(vinv);
        gemm(1.0, &mv, Op::NoTrans, &self.expk_inv, Op::NoTrans, 0.0, out);
        workspace::put_matrix(mv);
    }

    /// `out ← B_{l,σ} · G · B_{l,σ}⁻¹`, the equal-time wrap to the next
    /// slice, with all staging taken from the workspace arena.
    pub fn wrap_into(&self, h: &HsField, l: usize, spin: Spin, g: &Matrix, out: &mut Matrix) {
        let mut bg = workspace::take_matrix(self.n, g.ncols());
        self.b_mul_left_into(h, l, spin, g, &mut bg);
        self.b_inv_mul_right_into(h, l, spin, &bg, out);
        workspace::put_matrix(bg);
    }

    /// Cluster product `B_{l_hi−1} ⋯ B_{l_lo}` (Algorithm 4's host analogue):
    /// the product over slices `l ∈ [l_lo, l_hi)`, rightmost factor first.
    /// Accumulates by ping-ponging two arena matrices instead of allocating
    /// one product per slice.
    pub fn cluster(&self, h: &HsField, l_lo: usize, l_hi: usize, spin: Spin) -> Matrix {
        assert!(l_lo < l_hi && l_hi <= h.slices(), "bad cluster range");
        let mut acc = self.b_matrix(h, l_lo, spin);
        let mut tmp = workspace::take_matrix(self.n, self.n);
        for l in (l_lo + 1)..l_hi {
            self.b_mul_left_into(h, l, spin, &acc, &mut tmp);
            std::mem::swap(&mut acc, &mut tmp);
        }
        workspace::put_matrix(tmp);
        acc
    }

    /// Full chain `B_{L−1} ⋯ B_0` (tests / brute-force checks only — this is
    /// the numerically unstable product the stratification exists to avoid).
    pub fn full_chain(&self, h: &HsField, spin: Spin) -> Matrix {
        self.cluster(h, 0, h.slices(), spin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lattice::Lattice;
    use linalg::blas3::matmul;

    fn setup() -> (ModelParams, BMatrixFactory, HsField) {
        let model = ModelParams::new(Lattice::square(3, 3, 1.0), 4.0, 0.2, 0.125, 8);
        let fac = BMatrixFactory::new(&model);
        let mut rng = util::Rng::new(11);
        let h = HsField::random(model.nsites(), model.slices, &mut rng);
        (model, fac, h)
    }

    #[test]
    fn v_diag_values() {
        let (model, fac, h) = setup();
        let v = fac.v_diag(&h, 2, Spin::Up);
        for (i, &vi) in v.iter().enumerate() {
            let expect = (model.nu() * h.get(2, i)).exp();
            assert!((vi - expect).abs() < 1e-15);
        }
        let vd = fac.v_diag(&h, 2, Spin::Down);
        for (vu, vd) in v.iter().zip(vd.iter()) {
            assert!((vu * vd - 1.0).abs() < 1e-12, "up/down are inverses");
        }
    }

    #[test]
    fn b_matrix_is_scaled_expk() {
        let (_, fac, h) = setup();
        let b = fac.b_matrix(&h, 0, Spin::Up);
        let v = fac.v_diag(&h, 0, Spin::Up);
        for i in 0..fac.nsites() {
            for j in 0..fac.nsites() {
                assert!((b[(i, j)] - fac.expk()[(i, j)] * v[j]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn b_mul_left_matches_explicit() {
        let (_, fac, h) = setup();
        let mut rng = util::Rng::new(2);
        let m = Matrix::random(9, 9, &mut rng);
        let fast = fac.b_mul_left(&h, 3, Spin::Down, &m);
        let b = fac.b_matrix(&h, 3, Spin::Down);
        let explicit = matmul(&b, Op::NoTrans, &m, Op::NoTrans);
        assert!(fast.max_abs_diff(&explicit) < 1e-12);
    }

    #[test]
    fn b_inv_mul_right_inverts_left_mul() {
        let (_, fac, h) = setup();
        let mut rng = util::Rng::new(3);
        let m = Matrix::random(9, 9, &mut rng);
        let bm = fac.b_mul_left(&h, 5, Spin::Up, &m);
        // (B m) B⁻¹ should equal B m B⁻¹; sanity: m B B⁻¹ = m.
        let mb = {
            let b = fac.b_matrix(&h, 5, Spin::Up);
            matmul(&m, Op::NoTrans, &b, Op::NoTrans)
        };
        let back = fac.b_inv_mul_right(&h, 5, Spin::Up, &mb);
        assert!(back.max_abs_diff(&m) < 1e-11);
        let _ = bm;
    }

    #[test]
    fn cluster_equals_sequential_product() {
        let (_, fac, h) = setup();
        let c = fac.cluster(&h, 2, 6, Spin::Up);
        // explicit B5 B4 B3 B2
        let mut acc = fac.b_matrix(&h, 2, Spin::Up);
        for l in 3..6 {
            let b = fac.b_matrix(&h, l, Spin::Up);
            acc = matmul(&b, Op::NoTrans, &acc, Op::NoTrans);
        }
        assert!(c.max_abs_diff(&acc) < 1e-11);
    }

    #[test]
    fn full_chain_composes_clusters() {
        let (_, fac, h) = setup();
        let whole = fac.full_chain(&h, Spin::Down);
        let lo = fac.cluster(&h, 0, 4, Spin::Down);
        let hi = fac.cluster(&h, 4, 8, Spin::Down);
        let composed = matmul(&hi, Op::NoTrans, &lo, Op::NoTrans);
        let scale = whole.max_abs().max(1.0);
        assert!(whole.max_abs_diff(&composed) / scale < 1e-12);
    }

    #[test]
    fn u_zero_b_is_expk() {
        let model = ModelParams::new(Lattice::square(2, 2, 1.0), 0.0, 0.0, 0.1, 4);
        let fac = BMatrixFactory::new(&model);
        let h = HsField::ones(4, 4);
        let b = fac.b_matrix(&h, 0, Spin::Up);
        assert!(b.max_abs_diff(fac.expk()) < 1e-15);
    }

    #[test]
    #[should_panic(expected = "bad cluster range")]
    fn empty_cluster_rejected() {
        let (_, fac, h) = setup();
        let _ = fac.cluster(&h, 3, 3, Spin::Up);
    }
}
