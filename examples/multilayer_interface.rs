//! Multilayer interface: the physics the paper's introduction motivates.
//!
//! Simulates a stack of three 4×4 planes with weaker inter-layer hopping
//! (a crude oxide-interface model) and measures *layer-resolved* densities
//! and nearest-neighbour spin correlations by working directly with the
//! Green's functions — demonstrating how to build custom observables on
//! top of the public API.
//!
//! Run with: `cargo run --release --example multilayer_interface`

use dqmc::{ModelParams, SimParams, Simulation, Spin};
use lattice::Lattice;

fn main() {
    let (lx, ly, layers) = (4, 4, 3);
    // In-plane hopping t = 1, inter-layer hopping t_z = 0.5, U = 4.
    let lattice = Lattice::multilayer(lx, ly, layers, 1.0, 0.5);
    let model = ModelParams::new(lattice.clone(), 4.0, 0.0, 0.125, 24);

    println!(
        "running DQMC: {lx}x{ly}x{layers} multilayer (N = {}), U=4, beta=3 ...",
        model.nsites()
    );
    let mut sim = Simulation::new(
        SimParams::new(model)
            .with_sweeps(60, 150)
            .with_seed(11)
            .with_cluster_size(8),
    );
    sim.warmup(60);

    // Layer-resolved accumulation over measurement sweeps.
    let nmeas = 150;
    let mut layer_density = vec![0.0; layers];
    let mut layer_afm = vec![0.0; layers]; // in-plane NN spin correlation
    for _ in 0..nmeas {
        sim.measure(1);
        let gup = sim.greens(Spin::Up);
        let gdn = sim.greens(Spin::Down);
        for z in 0..layers {
            let mut rho = 0.0;
            let mut afm = 0.0;
            let mut bonds = 0.0;
            for y in 0..ly {
                for x in 0..lx {
                    let r = lattice.site(x, y, z);
                    let nup = 1.0 - gup[(r, r)];
                    let ndn = 1.0 - gdn[(r, r)];
                    rho += nup + ndn;
                    // In-plane nearest neighbour (x+1): same-config estimate
                    // of ⟨(n↑−n↓)_r (n↑−n↓)_r'⟩ via Wick.
                    let rp = lattice.site((x + 1) % lx, y, z);
                    let nup2 = 1.0 - gup[(rp, rp)];
                    let ndn2 = 1.0 - gdn[(rp, rp)];
                    let same_up = nup2 * nup + (0.0 - gup[(r, rp)]) * gup[(rp, r)];
                    let same_dn = ndn2 * ndn + (0.0 - gdn[(r, rp)]) * gdn[(rp, r)];
                    let cross = nup2 * ndn + ndn2 * nup;
                    afm += same_up + same_dn - cross;
                    bonds += 1.0;
                }
            }
            layer_density[z] += rho / (lx * ly) as f64 / nmeas as f64;
            layer_afm[z] += afm / bonds / nmeas as f64;
        }
    }

    println!("\nlayer-resolved results (open stacking, layer 1 = centre):");
    println!("layer  density  nn-spin-corr");
    for z in 0..layers {
        println!("{z:>5}  {:>7.4}  {:>12.4}", layer_density[z], layer_afm[z]);
    }
    println!("\nexpect: density 1 in every layer (ph symmetry survives the");
    println!("interface); antiferromagnetic (negative) in-plane correlations,");
    println!("strongest in the boundary layers whose effective coordination");
    println!("is lowest.");
}
