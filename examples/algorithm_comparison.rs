//! The paper's core claim, demonstrated end-to-end: stratification with
//! pre-pivoting (Algorithm 3) produces Green's functions numerically
//! indistinguishable from the classic QRP stratification (Algorithm 2) —
//! identical Markov chains, identical physics — while running substantially
//! faster because unpivoted QR runs at near-GEMM speed.
//!
//! Run with: `cargo run --release --example algorithm_comparison`

use dqmc::{ModelParams, SimParams, Simulation, Spin, StratAlgo};
use lattice::Lattice;
use std::time::Instant;

fn run(algo: StratAlgo) -> (Simulation, f64) {
    let model = ModelParams::new(Lattice::square(8, 8, 1.0), 4.0, 0.0, 0.125, 40);
    let params = SimParams::new(model)
        .with_sweeps(20, 40)
        .with_seed(77)
        .with_algo(algo);
    let t0 = Instant::now();
    let mut sim = Simulation::new(params);
    sim.run();
    (sim, t0.elapsed().as_secs_f64())
}

fn main() {
    println!("8x8 Hubbard, U=4, beta=5, same seed, two stratification algorithms\n");
    let (sim_qrp, t_qrp) = run(StratAlgo::Qrp);
    let (sim_pre, t_pre) = run(StratAlgo::PrePivot);

    let g_qrp = sim_qrp.greens(Spin::Up);
    let g_pre = sim_pre.greens(Spin::Up);
    let diff = dqmc::greens::relative_difference(g_pre, g_qrp);

    let (d_qrp, e_qrp) = sim_qrp.observables().double_occupancy();
    let (d_pre, e_pre) = sim_pre.observables().double_occupancy();

    println!("wall time   QRP (Alg. 2)      : {t_qrp:.2}s");
    println!("wall time   pre-pivot (Alg. 3): {t_pre:.2}s");
    println!("speedup                       : {:.2}x", t_qrp / t_pre);
    println!();
    println!("final Green's function relative difference: {diff:.2e}");
    println!("(the Markov chains coincide decision-for-decision, so the");
    println!(" difference is pure floating-point, ~1e-12 per the paper's Fig. 2)");
    println!();
    println!("double occupancy  QRP: {d_qrp:.4} ± {e_qrp:.4}");
    println!("double occupancy  pre: {d_pre:.4} ± {e_pre:.4}");
    println!();
    println!("max wrap error    QRP: {:.2e}", sim_qrp.max_wrap_error());
    println!("max wrap error    pre: {:.2e}", sim_pre.max_wrap_error());
}
