//! Antiferromagnetic correlations vs temperature, using the parallel
//! ensemble runner: the AF structure factor S(π,π) of the half-filled
//! Hubbard model grows as the temperature drops — the physics the paper's
//! large-β (β = 32) production runs are built to capture.
//!
//! Run with: `cargo run --release --example temperature_sweep`

use dqmc::{run_ensemble, ModelParams, SimParams};
use lattice::Lattice;

fn main() {
    let lside = 4;
    let u = 4.0;
    let dtau = 0.125;
    println!("S(pi,pi) vs inverse temperature ({lside}x{lside}, U={u}, 2 chains each)\n");
    println!("beta    T     S(pi,pi)      err     docc");
    for &slices in &[8usize, 16, 32, 48] {
        let beta = slices as f64 * dtau;
        let model = ModelParams::new(Lattice::square(lside, lside, 1.0), u, 0.0, dtau, slices);
        let params = SimParams::new(model)
            .with_sweeps(80, 200)
            .with_seed(1000 + slices as u64)
            .with_bin_size(10);
        let res = run_ensemble(&params, 2);
        let (saf, saf_err) = res.observables.af_structure_factor();
        let (docc, _) = res.observables.double_occupancy();
        println!(
            "{beta:>4}  {:>5.3}  {saf:>9.4}  {saf_err:>7.4}  {docc:>7.4}",
            1.0 / beta
        );
    }
    println!("\nexpect: S(pi,pi) grows monotonically as T drops (AF correlations");
    println!("build up), while double occupancy stays suppressed below the");
    println!("uncorrelated value 0.25.");
}
