//! Antiferromagnetic order at half filling (the paper's Figure 7 physics):
//! the chessboard pattern of the spin–spin correlation C_zz(r) and the
//! growth of the AF structure factor S(π,π) with interaction strength.
//!
//! Run with: `cargo run --release --example magnetic_order`

use dqmc::{ModelParams, SimParams, Simulation};
use lattice::Lattice;

fn main() {
    let lside = 6;
    println!("S(pi,pi) vs interaction strength ({lside}x{lside}, beta=4):\n");
    println!("   U   S(pi,pi)      err");
    let mut last_czz = None;
    for &u in &[0.0, 2.0, 4.0, 6.0] {
        let model = ModelParams::new(Lattice::square(lside, lside, 1.0), u, 0.0, 0.125, 32);
        let mut sim = Simulation::new(
            SimParams::new(model)
                .with_sweeps(80, 200)
                .with_seed(5 + u as u64)
                .with_bin_size(10),
        );
        sim.run();
        let (saf, err) = sim.observables().af_structure_factor();
        println!("{u:>4}  {saf:>9.4}  {err:>7.4}");
        if u == 6.0 {
            last_czz = Some(sim.observables().czz());
        }
    }

    // Chessboard pattern at the strongest coupling.
    let czz = last_czz.expect("ran U=6");
    println!("\nC_zz(r) sign pattern at U=6 (chessboard expected):");
    for dy in 0..lside {
        let mut row = String::new();
        for dx in 0..lside {
            let v = czz[(dx, dy)];
            row.push(if v > 0.0 { '+' } else { '-' });
            row.push(' ');
        }
        println!("  {row}");
    }
    println!("\nC_zz(0,0) = {:+.4} (on-site moment)", czz[(0, 0)]);
    println!("C_zz(1,0) = {:+.4} (NN, antiferromagnetic)", czz[(1, 0)]);
    println!("C_zz(1,1) = {:+.4} (diagonal, ferro-aligned)", czz[(1, 1)]);
    println!(
        "C_zz(L/2,L/2) = {:+.4} (longest distance, the N->inf extrapolation input)",
        czz[(lside / 2, lside / 2)]
    );
}
