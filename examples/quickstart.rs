//! Quickstart: simulate the half-filled 4×4 Hubbard model and print the
//! basic observables.
//!
//! Run with: `cargo run --release --example quickstart`

use dqmc::{ModelParams, SimParams, Simulation};
use lattice::Lattice;

fn main() {
    // 4×4 periodic square lattice, U = 4t, half filling (μ̃ = 0),
    // inverse temperature β = L·Δτ = 40 · 0.1 = 4.
    let lattice = Lattice::square(4, 4, 1.0);
    let model = ModelParams::new(lattice, 4.0, 0.0, 0.1, 40);

    let params = SimParams::new(model)
        .with_sweeps(100, 300) // warmup, measurement
        .with_seed(42);

    println!("running DQMC: 4x4 Hubbard, U=4, beta=4, 100+300 sweeps ...");
    let mut sim = Simulation::new(params);
    sim.run();

    let obs = sim.observables();
    let (sign, _) = obs.avg_sign();
    let (rho, rho_err) = obs.density();
    let (docc, docc_err) = obs.double_occupancy();
    let (ekin, ekin_err) = obs.kinetic_energy();
    let (saf, saf_err) = obs.af_structure_factor();

    println!("acceptance rate   : {:.3}", sim.acceptance_rate());
    println!("average sign      : {sign:.4}  (exactly 1 at half filling)");
    println!("density           : {rho:.4} ± {rho_err:.4}   (ph-symmetry: 1)");
    println!("double occupancy  : {docc:.4} ± {docc_err:.4} (< 0.25: U suppresses)");
    println!("kinetic energy    : {ekin:.4} ± {ekin_err:.4} per site");
    println!("S(pi,pi)          : {saf:.4} ± {saf_err:.4}   (AF structure factor)");
    println!("max wrap error    : {:.2e}", sim.max_wrap_error());

    // The Table I style profile of where the time went.
    println!("\nphase breakdown:");
    for (phase, secs, pct) in sim.phase_report().rows {
        if secs > 0.0 {
            println!("  {phase:<16} {secs:>8.3}s  {pct:>5.1}%");
        }
    }
}
