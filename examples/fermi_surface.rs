//! Fermi surface of the weakly interacting Hubbard model (the paper's
//! Figure 5/6 physics): momentum distribution ⟨n_k⟩ along the
//! (0,0) → (π,π) → (π,0) → (0,0) symmetry path, rendered as an ASCII
//! profile, plus the renormalisation-factor estimate at the Fermi crossing.
//!
//! Run with: `cargo run --release --example fermi_surface`

use dqmc::{ModelParams, SimParams, Simulation};
use lattice::Lattice;

fn main() {
    let lside = 8;
    let model = ModelParams::new(Lattice::square(lside, lside, 1.0), 2.0, 0.0, 0.15, 40);
    println!(
        "running DQMC: {lside}x{lside}, U=2, beta={}, half filling ...",
        model.beta()
    );
    let mut sim = Simulation::new(
        SimParams::new(model)
            .with_sweeps(60, 150)
            .with_seed(3)
            .with_bin_size(10),
    );
    sim.run();

    let path = sim.observables().momentum_distribution_path();
    println!("\n<n_k> along (0,0) -> (pi,pi) -> (pi,0) -> (0,0):\n");
    let width = 50usize;
    for (arc, v) in &path {
        let bar = "#".repeat((v * width as f64).round().max(0.0) as usize);
        println!("{arc:>6.3}  {v:>6.4}  |{bar}");
    }

    // Sharpest drop along the path ≈ the Fermi surface; the jump height is
    // the quasiparticle renormalisation factor Z (1 for free fermions,
    // reduced by interactions).
    let mut max_drop = 0.0;
    let mut where_at = 0.0;
    for w in path.windows(2) {
        let drop = w[0].1 - w[1].1;
        if drop > max_drop {
            max_drop = drop;
            where_at = 0.5 * (w[0].0 + w[1].0);
        }
    }
    println!("\nsharpest n_k drop: {max_drop:.3} at arc {where_at:.3}");
    println!("(paper: sharp Fermi surface near the middle of (0,0)->(pi,pi);");
    println!(" larger lattices resolve the discontinuity better)");
}
