//! The sweep scheduler's determinism contract, end to end.
//!
//! A campaign's pooled observables must be a **pure function of
//! (grid, seeds)**: worker count, device-pool size, placement order,
//! preemption schedule and scripted one-shot fault plans may change every
//! scheduling decision, yet [`sched::SweepReport::observables_json`] must
//! come out byte-identical. Each test here runs the same tiny grid under a
//! different scheduling regime, *proves* via the trace stream that the
//! regime actually differed (yields happened, devices were used, injected
//! jobs cut in), and then asserts the bytes match the serial baseline.

use sched::{EventLog, GridSpec, SchedConfig, TraceEvent};

const GRID: &str = "
    lx = 2
    ly = 2
    u = 2.0, 4.0
    beta = 1.0      # 8 slices
    chains = 2
    warmup = 4
    sweeps = 8
    bin_size = 2
    cluster_size = 4
    seed = 7
    workers = 1
    devices = 0
";

fn spec() -> GridSpec {
    GridSpec::parse(GRID).expect("baseline grid parses")
}

/// Serial host-only reference: one worker, no devices, jobs run to
/// completion. Everything else is compared against this.
fn baseline() -> String {
    let spec = spec();
    let cfg = SchedConfig {
        workers: 1,
        devices: 0,
        queue_bound: 0,
        quantum: 0,
        yield_every_quanta: 0,
        job_retries: 1,
        hold_points: Vec::new(),
        ..SchedConfig::default()
    };
    sched::run_sweep(&spec, &cfg, &EventLog::new()).observables_json()
}

#[test]
fn baseline_is_reproducible() {
    assert_eq!(baseline(), baseline());
}

#[test]
fn worker_count_is_unobservable() {
    let spec = spec();
    let cfg = SchedConfig {
        workers: 4,
        devices: 0,
        queue_bound: 0,
        quantum: 0,
        yield_every_quanta: 0,
        job_retries: 1,
        hold_points: Vec::new(),
        ..SchedConfig::default()
    };
    let report = sched::run_sweep(&spec, &cfg, &EventLog::new());
    assert_eq!(report.workers, 4);
    assert_eq!(report.observables_json(), baseline());
}

#[test]
fn device_pool_size_is_unobservable() {
    let spec = spec();
    for (workers, devices) in [(2, 2), (1, 1), (3, 1)] {
        let cfg = SchedConfig {
            workers,
            devices,
            queue_bound: 0,
            quantum: 0,
            yield_every_quanta: 0,
            job_retries: 1,
            hold_points: Vec::new(),
            ..SchedConfig::default()
        };
        let events = EventLog::new();
        let report = sched::run_sweep(&spec, &cfg, &events);
        // The pool was actually exercised: someone ran on a device.
        assert!(
            report.leases_granted > 0,
            "{workers}w/{devices}d: no job ever leased a device"
        );
        assert!(report.device_quanta > 0);
        assert_eq!(
            report.observables_json(),
            baseline(),
            "{workers} workers / {devices} devices changed the physics"
        );
    }
}

#[test]
fn preemption_and_resume_are_unobservable() {
    let spec = spec();
    let cfg = SchedConfig {
        workers: 1,
        devices: 1,
        queue_bound: 0,
        quantum: 3,            // park every 3 sweeps...
        yield_every_quanta: 1, // ...after every single quantum
        job_retries: 1,
        hold_points: Vec::new(),
        ..SchedConfig::default()
    };
    let events = EventLog::new();
    let report = sched::run_sweep(&spec, &cfg, &events);
    // Preemption really happened: jobs parked and resumed from DQCP images.
    let yields = events.count(|e| matches!(e, TraceEvent::Yielded { .. }));
    let resumes = events.count(|e| matches!(e, TraceEvent::Started { resumed: true, .. }));
    assert!(yields >= 4, "expected forced yields, saw {yields}");
    assert!(resumes >= 4, "expected checkpoint resumes, saw {resumes}");
    assert_eq!(report.preemptions, yields as u64);
    assert_eq!(report.observables_json(), baseline());
}

#[test]
fn mid_sweep_priority_injection_is_unobservable() {
    // Point 1's jobs are held out of the initial submission and injected at
    // a higher priority the moment the first event fires — so they cut in
    // front of point 0's remaining work mid-sweep.
    let spec = spec();
    let cfg = SchedConfig {
        workers: 1,
        devices: 0,
        queue_bound: 0,
        quantum: 2,
        yield_every_quanta: 1,
        job_retries: 1,
        hold_points: vec![1],
        ..SchedConfig::default()
    };
    let events = EventLog::new();
    let report = sched::run_sweep_observed(
        &spec,
        &cfg,
        &events,
        Some(&|_e, injector| injector.release_held(1)),
    );
    let snap = events.snapshot();
    // The injected point really did run before point 0 finished.
    let first_p1_start = snap
        .iter()
        .position(|e| matches!(e, TraceEvent::Started { point: 1, .. }))
        .expect("held point was injected");
    let last_p0_done = snap
        .iter()
        .rposition(|e| matches!(e, TraceEvent::Completed { point: 0, .. }))
        .expect("point 0 completed");
    assert!(
        first_p1_start < last_p0_done,
        "injected jobs should preempt point 0's remaining work"
    );
    assert_eq!(report.failed_jobs, 0);
    assert_eq!(report.observables_json(), baseline());
}

#[test]
fn scripted_device_faults_heal_bit_identically() {
    let faulty = GridSpec::parse(&format!(
        "{GRID}\n    faults = fail_launch:2, oom:1, corrupt_transfer:4\n"
    ))
    .expect("faulty grid parses");
    let cfg = SchedConfig {
        workers: 2,
        devices: 2,
        queue_bound: 0,
        quantum: 0,
        yield_every_quanta: 0,
        job_retries: 1,
        hold_points: Vec::new(),
        ..SchedConfig::default()
    };
    let report = sched::run_sweep(&faulty, &cfg, &EventLog::new());
    // The faults really fired and the recovery ladder really healed them.
    let recovery: u64 = report.points.iter().map(|p| p.recovery_events).sum();
    assert!(
        recovery > 0,
        "scripted faults never fired — the test proves nothing"
    );
    assert_eq!(report.failed_jobs, 0, "faults must heal, not kill jobs");
    assert_eq!(report.observables_json(), baseline());
}

#[test]
fn flip_bit_faults_are_rejected_at_parse_time() {
    let err = GridSpec::parse(&format!("{GRID}\n    faults = flip_bit:3\n")).unwrap_err();
    assert!(err.to_string().contains("determinism"), "{err}");
}

// ---- crowd-size invariance ------------------------------------------------
//
// Crowd-batched execution (jobs of B chains stepped in lockstep through
// strided-batch device kernels) is a *schedule-layer* optimisation: the
// observables bytes must not move when B changes, whether the crowd runs on
// the batched device backend, falls back to the host mid-run, or heals
// storms of scripted faults inside a batch.

const CROWD_GRID: &str = "
    lx = 2
    ly = 2
    u = 2.0, 4.0
    beta = 1.0      # 8 slices
    chains = 8
    warmup = 4
    sweeps = 8
    bin_size = 2
    cluster_size = 4
    seed = 7
    workers = 1
    devices = 0
";

fn crowd_spec(crowd: usize, extra: &str) -> GridSpec {
    GridSpec::parse(&format!("{CROWD_GRID}\n    crowd = {crowd}\n{extra}"))
        .expect("crowd grid parses")
}

/// Solo-job host reference for the crowd grid.
fn crowd_baseline() -> String {
    let cfg = SchedConfig {
        workers: 1,
        devices: 0,
        ..SchedConfig::default()
    };
    sched::run_sweep(&crowd_spec(1, ""), &cfg, &EventLog::new()).observables_json()
}

#[test]
fn crowd_size_is_unobservable() {
    let base = crowd_baseline();
    for crowd in [4, 8] {
        let spec = crowd_spec(crowd, "");
        let cfg = SchedConfig {
            workers: 2,
            devices: 2,
            ..SchedConfig::default()
        };
        let report = sched::run_sweep(&spec, &cfg, &EventLog::new());
        assert_eq!(report.crowd, crowd);
        // The batched device path really ran.
        assert!(report.leases_granted > 0, "crowd {crowd}: no device lease");
        assert!(report.device_quanta > 0);
        assert!(report.device_seconds > 0.0);
        assert_eq!(report.failed_jobs, 0);
        assert_eq!(
            report.observables_json(),
            base,
            "crowd size {crowd} changed the physics"
        );
    }
}

#[test]
fn crowd_jobs_survive_preemption_and_resume() {
    // Crowd checkpoints are DQCW envelopes of per-walker DQCP images; a
    // preempted crowd must resume bit-identically mid-batch.
    let spec = crowd_spec(4, "");
    let cfg = SchedConfig {
        workers: 1,
        devices: 1,
        quantum: 3,
        yield_every_quanta: 1,
        ..SchedConfig::default()
    };
    let events = EventLog::new();
    let report = sched::run_sweep(&spec, &cfg, &events);
    let yields = events.count(|e| matches!(e, TraceEvent::Yielded { .. }));
    let resumes = events.count(|e| matches!(e, TraceEvent::Started { resumed: true, .. }));
    assert!(yields >= 4, "expected forced crowd yields, saw {yields}");
    assert!(resumes >= 4, "expected crowd resumes, saw {resumes}");
    assert_eq!(report.failed_jobs, 0);
    assert_eq!(report.observables_json(), crowd_baseline());
}

#[test]
fn fault_storms_heal_mid_crowd_bit_identically() {
    // Scripted device faults land *inside* crowd batches: launch failures
    // retry the whole batch, silent corruption taints a single walker whose
    // solo repair path heals it without touching its neighbours — and the
    // pooled bytes still match the solo host reference.
    let spec = crowd_spec(
        4,
        "    faults = fail_launch:2, oom:1, corrupt_transfer:4, corrupt_transfer:9\n",
    );
    let cfg = SchedConfig {
        workers: 2,
        devices: 2,
        ..SchedConfig::default()
    };
    let report = sched::run_sweep(&spec, &cfg, &EventLog::new());
    let recovery: u64 = report.points.iter().map(|p| p.recovery_events).sum();
    assert!(
        recovery > 0,
        "scripted faults never fired inside a crowd — the test proves nothing"
    );
    assert_eq!(
        report.failed_jobs, 0,
        "crowd faults must heal, not kill jobs"
    );
    assert_eq!(report.observables_json(), crowd_baseline());
}
