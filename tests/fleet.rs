//! Tier: fleet. Multi-process sharding against real child processes.
//!
//! These tests spawn the workspace's `fleet-child` binary (built by Cargo
//! for this package's test runs) and pin the fleet contract end to end:
//!
//! 1. **Byte identity**: `run_fleet` over P ∈ {1, 2, 4} processes emits an
//!    observables document byte-identical to the in-process `run_sweep`
//!    of the same grid — including with scripted device faults armed.
//! 2. **Crash recovery**: a child killed mid-sweep (scripted exit after
//!    its first finished point) is respawned from its report checkpoint
//!    and the merged bytes still match.
//! 3. **Wedge recovery**: a child whose heartbeat freezes is detected,
//!    killed, respawned — same bytes.
//! 4. **Quarantine**: a child that can never succeed exhausts its respawn
//!    budget and the fleet reports exactly which shard failed instead of
//!    fabricating output.
//! 5. **Standalone merge**: shard report files left on disk recombine via
//!    [`fleet::merge_reports`] to the same bytes (the `dqmc-run merge`
//!    path).
//! 6. **Served fleet**: a `dqmc-serve`-shaped server with a fleet policy
//!    returns the same bytes over the wire, and its second submission is
//!    a pure cache hit.

use fleet::{ChildCommand, FleetConfig, FleetError};
use sched::{EventLog, GridSpec, SchedConfig};
use serve::{Server, ServerConfig};
use std::path::PathBuf;
use std::time::Duration;

/// The campaign grid: 4 points, preemption quanta, device placement, and
/// scripted one-shot faults — all the scheduling chaos the determinism
/// contract says cannot move a byte.
const GRID: &str = "
    lx = 2
    ly = 2
    u = 2.0, 4.0
    beta = 1.0, 2.0
    chains = 2
    warmup = 2
    sweeps = 6
    bin_size = 2
    cluster_size = 4
    seed = 37
    workers = 2
    devices = 1
    quantum = 3
    faults = fail_launch:2
";

/// In-process reference bytes for a grid.
fn baseline(grid: &str) -> String {
    let spec = GridSpec::parse(grid).expect("grid parses");
    let cfg = SchedConfig::from_spec(&spec);
    sched::run_sweep(&spec, &cfg, &EventLog::new()).observables_json()
}

/// The shard-child executable Cargo built for this test run.
fn child() -> ChildCommand {
    ChildCommand {
        program: PathBuf::from(env!("CARGO_BIN_EXE_fleet-child")),
        args: Vec::new(),
        envs: Vec::new(),
    }
}

/// Per-test scratch dir (pid-scoped; cleaned on entry).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dqmc_fleet_test_{}_{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A test-paced config: tight polling, a heartbeat timeout far above a
/// healthy child's 25 ms beat but short enough to keep the wedge test
/// quick.
fn config(tag: &str, procs: usize) -> FleetConfig {
    let mut cfg = FleetConfig::new(procs, child(), scratch(tag));
    cfg.poll_interval = Duration::from_millis(10);
    cfg.heartbeat_timeout = Duration::from_secs(2);
    cfg
}

#[test]
fn fleet_bytes_match_single_process_for_1_2_4_procs() {
    let want = baseline(GRID);
    for procs in [1usize, 2, 4] {
        let out = fleet::run_fleet(GRID, &config(&format!("p{procs}"), procs))
            .unwrap_or_else(|e| panic!("fleet procs={procs}: {e}"));
        assert_eq!(out.observables, want, "procs={procs} bytes diverged");
        assert_eq!(out.shards, procs, "4-point grid supports up to 4 shards");
        assert_eq!(out.respawns, 0);
        assert_eq!(out.kills, 0);
        assert_eq!(out.merged.points.len(), 4);
    }
}

#[test]
fn child_killed_mid_sweep_respawns_from_checkpoint_with_identical_bytes() {
    let want = baseline(GRID);
    let mut cfg = config("crash", 2);
    // Shard 0 exits with code 86 after checkpointing its first point; the
    // respawn (hooks stripped) must finish only the remaining points.
    cfg.child.envs = vec![
        (fleet::child::ENV_EXIT_AFTER.into(), "1".into()),
        (fleet::child::ENV_FAULT_SHARD.into(), "0".into()),
    ];
    let out = fleet::run_fleet(GRID, &cfg).expect("fleet survives a child crash");
    assert_eq!(out.observables, want, "crash recovery moved bytes");
    assert_eq!(out.respawns, 1, "exactly one respawn for the scripted exit");
    assert!(
        out.ledger.iter().any(|l| l.contains("respawned")),
        "ledger records the respawn: {:?}",
        out.ledger
    );
}

#[test]
fn wedged_child_is_killed_on_stale_heartbeat_and_bytes_match() {
    let want = baseline(GRID);
    let mut cfg = config("wedge", 2);
    // Shard 1 freezes its heartbeat after its first point and sleeps
    // forever: only the supervisor's stale-heartbeat kill can end it.
    cfg.child.envs = vec![
        (fleet::child::ENV_HANG_AFTER.into(), "1".into()),
        (fleet::child::ENV_FAULT_SHARD.into(), "1".into()),
    ];
    let out = fleet::run_fleet(GRID, &cfg).expect("fleet survives a wedged child");
    assert_eq!(out.observables, want, "wedge recovery moved bytes");
    assert_eq!(out.kills, 1, "exactly one stale-heartbeat kill");
    assert_eq!(out.respawns, 1);
    assert!(
        out.ledger.iter().any(|l| l.contains("heartbeat stale")),
        "ledger records the kill: {:?}",
        out.ledger
    );
}

#[test]
fn child_with_failing_heartbeat_writes_escalates_and_respawn_recovers() {
    let want = baseline(GRID);
    let mut cfg = config("beatfail", 2);
    // Every heartbeat write in the children fails (simulated full disk,
    // scoped to `.beat` files so reports and manifests are untouched),
    // and the escalation streak is lowered to 1 so the very first failed
    // beat escalates — deterministically before any point completes. The
    // child exits with the heartbeat code and the supervisor respawns it
    // with both hooks stripped — bytes must still match.
    cfg.child.envs = vec![
        (
            util::vfs::ENV_FAULTS.into(),
            "scope=.beat;enospc@1-1000000;mode=sim".into(),
        ),
        (fleet::child::ENV_BEAT_STREAK.into(), "1".into()),
    ];
    let out = fleet::run_fleet(GRID, &cfg).expect("fleet survives heartbeat escalation");
    assert_eq!(out.observables, want, "heartbeat escalation moved bytes");
    assert!(out.respawns >= 1, "escalated children must be respawned");
    assert!(
        out.ledger
            .iter()
            .any(|l| l.contains("heartbeat write failures escalated")),
        "ledger records the escalation: {:?}",
        out.ledger
    );
}

#[test]
fn unrecoverable_shard_is_quarantined_after_respawn_budget() {
    let mut cfg = config("quarantine", 2);
    // A child that is not a shard worker at all: exits 1 instantly, never
    // writes a report. Every attempt fails the same way.
    cfg.child = ChildCommand {
        program: PathBuf::from("false"),
        args: Vec::new(),
        envs: Vec::new(),
    };
    cfg.respawn_budget = 2;
    match fleet::run_fleet(GRID, &cfg) {
        Err(FleetError::ShardFailed { attempts, .. }) => {
            assert_eq!(attempts, 3, "1 initial spawn + 2 respawns");
        }
        Err(other) => panic!("expected ShardFailed, got {other}"),
        Ok(_) => panic!("a fleet of /bin/false cannot succeed"),
    }
}

#[test]
fn kept_shard_reports_merge_standalone_to_the_same_bytes() {
    let want = baseline(GRID);
    let mut cfg = config("merge", 2);
    cfg.keep_files = true;
    let out = fleet::run_fleet(GRID, &cfg).expect("fleet run");
    assert_eq!(out.observables, want);

    // Recombine from disk alone — the `dqmc-run merge` path.
    let mut reports = Vec::new();
    for shard in 0..out.shards {
        let path = cfg.workdir.join(format!("shard-{shard}.dqsr"));
        reports.push(fleet::ShardReport::read(&path).expect("report decodes"));
    }
    let merged = fleet::merge_reports(&reports).expect("reports merge");
    assert_eq!(merged.observables_json(), want, "standalone merge diverged");
    let _ = std::fs::remove_dir_all(&cfg.workdir);
}

#[test]
fn served_fleet_campaign_matches_in_process_and_backfills_the_cache() {
    let want = baseline(GRID);
    let cache_dir = scratch("serve_fleet_cache");
    let server = Server::bind(
        "127.0.0.1:0",
        &ServerConfig {
            cache_dir: Some(cache_dir.clone()),
            fleet: Some(serve::FleetPolicy {
                procs: 2,
                child: child(),
                dir: scratch("serve_fleet_work"),
            }),
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let handle = server.handle();
    let addr = server.local_addr().to_string();
    let thread = std::thread::spawn(move || server.run());

    let mut client =
        serve::Client::connect_retry(&addr, 50, Duration::from_millis(20)).expect("connect");
    let cold = client
        .submit_with("fleet-tenant", 0, GRID, |_| {})
        .expect("cold submission");
    assert_eq!(cold.observables, want, "served fleet bytes diverged");
    assert_eq!(cold.computed_points, 4);
    assert_eq!(cold.cached_points, 0);

    // Second submission: every point now comes from the shared DQRC
    // cache — no fleet spawn, same bytes.
    let warm = client
        .submit_with("fleet-tenant", 0, GRID, |_| {})
        .expect("warm submission");
    assert_eq!(warm.observables, want, "warm-hit bytes diverged");
    assert_eq!(warm.cached_points, 4);
    assert_eq!(warm.computed_points, 0);
    assert_eq!(warm.jobs_run, 0, "a warm hit runs no fleet and no jobs");

    // The accept loop joins connection threads on shutdown; close our
    // connection first so its handler can exit.
    drop(client);
    handle.request_shutdown();
    let _ = thread.join();
    let _ = std::fs::remove_dir_all(&cache_dir);
}
