//! NaN-injection tests for the `checked-invariants` feature.
//!
//! With the feature on, poisoning one factor of a stratified chain must
//! abort with a panic that names the *cluster boundary* where the taint
//! entered — not a downstream pivot-norm or orthogonality failure. With the
//! feature off, the invariant macros expand to nothing and release behaviour
//! is exactly the seed's: the taint surfaces (much later) as a low-level
//! pivot-selection failure that names no boundary.

use dqmc::stratify::{StratAlgo, StratifyState};
use linalg::Matrix;

/// Deterministic well-conditioned factor: identity plus a small dense
/// perturbation, different per `seed` so the chain is not trivial.
fn factor(n: usize, seed: u64) -> Matrix {
    let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    Matrix::from_fn(n, n, |i, j| {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let r = ((s >> 33) as f64) / (1u64 << 31) as f64 - 1.0; // in [-1, 1)
        if i == j {
            1.0 + 0.1 * r
        } else {
            0.1 * r
        }
    })
}

/// Builds a chain of `len` factors and poisons the one absorbed at cluster
/// boundary `poison_at` (entry `(1, 2)`) with a NaN.
fn chain(n: usize, len: usize, poison_at: Option<usize>) -> Vec<Matrix> {
    (0..len)
        .map(|k| {
            let mut b = factor(n, k as u64);
            if poison_at == Some(k) {
                b[(1, 2)] = f64::NAN;
            }
            b
        })
        .collect()
}

fn run_chain(factors: &[Matrix], algo: StratAlgo) -> StratifyState {
    let mut st = StratifyState::new(&factors[0], algo);
    for b in &factors[1..] {
        st.push(b);
    }
    st
}

/// Runs `f` expecting a panic, and returns the panic message.
fn panic_message<F: FnOnce() + std::panic::UnwindSafe>(f: F) -> String {
    let prev = std::panic::take_hook();
    // Silence the default hook's backtrace spam for the expected panic.
    std::panic::set_hook(Box::new(|_| {}));
    let res = std::panic::catch_unwind(f);
    std::panic::set_hook(prev);
    let err = res.expect_err("poisoned chain must panic");
    if let Some(s) = err.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = err.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        panic!("panic payload was not a string");
    }
}

#[cfg(feature = "checked-invariants")]
mod checked {
    use super::*;

    #[test]
    fn poisoned_push_names_the_cluster_boundary() {
        for algo in [StratAlgo::Qrp, StratAlgo::PrePivot] {
            // Factor k is absorbed at cluster boundary k (factor 0 via `new`).
            let factors = chain(8, 6, Some(3));
            let msg = panic_message(move || {
                run_chain(&factors, algo);
            });
            assert!(
                msg.contains("stratify factor at cluster boundary 3"),
                "panic must name boundary 3, got: {msg}"
            );
            assert!(msg.contains("non-finite"), "unexpected message: {msg}");
        }
    }

    #[test]
    fn poisoned_first_factor_names_boundary_zero() {
        let factors = chain(8, 2, Some(0));
        let msg = panic_message(move || {
            run_chain(&factors, StratAlgo::Qrp);
        });
        assert!(
            msg.contains("cluster boundary 0"),
            "panic must name boundary 0, got: {msg}"
        );
    }

    #[test]
    fn clean_chain_passes_all_checks() {
        for algo in [StratAlgo::Qrp, StratAlgo::PrePivot] {
            let factors = chain(8, 6, None);
            let st = run_chain(&factors, algo);
            let udt = st.udt();
            assert!(udt.d.iter().all(|d| d.is_finite()));
        }
    }
}

#[cfg(not(feature = "checked-invariants"))]
mod unchecked {
    use super::*;

    #[test]
    fn release_mode_failure_does_not_name_a_boundary() {
        // Release semantics are exactly the seed's: the invariant macros are
        // no-ops, so the taint travels until QRP's pivot selection trips over
        // a NaN column norm — a low-level message with no boundary context.
        let factors = chain(8, 6, Some(3));
        let msg = panic_message(move || {
            run_chain(&factors, StratAlgo::Qrp);
        });
        assert!(
            !msg.contains("cluster boundary"),
            "boundary naming must be gated behind checked-invariants, got: {msg}"
        );
        assert!(
            !msg.contains("invariant violation"),
            "invariant layer must be compiled out, got: {msg}"
        );
    }

    #[test]
    fn clean_chain_is_unaffected() {
        let factors = chain(8, 6, None);
        let st = run_chain(&factors, StratAlgo::Qrp);
        assert!(st.udt().d.iter().all(|d| d.is_finite()));
    }
}
