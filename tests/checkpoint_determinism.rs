//! Kill-and-resume determinism: a run that is checkpointed, dropped, and
//! resumed from disk — repeatedly — must be **bit-identical** to the same
//! run left uninterrupted: HS field, Green's functions, RNG stream,
//! observable bins, counters. The strongest equality check is byte equality
//! of the final checkpoint files, which serialize all of that state.
//!
//! The CI robustness job runs this suite under both `LINALG_KERNEL=scalar`
//! and `LINALG_KERNEL=fma` (the kernel choice is cached per process, so the
//! two configurations need separate processes).

use dqmc::{ModelParams, SimParams, Simulation, Spin};
use lattice::Lattice;
use std::path::PathBuf;

fn params(seed: u64, warmup: usize, sweeps: usize) -> SimParams {
    let model = ModelParams::new(Lattice::square(3, 3, 1.0), 4.0, 0.0, 0.125, 12);
    SimParams::new(model)
        .with_sweeps(warmup, sweeps)
        .with_seed(seed)
        .with_cluster_size(4)
        .with_bin_size(10)
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dqmc_{}_{}.ckpt", name, std::process::id()))
}

#[test]
fn kill_and_resume_every_50th_sweep_is_bit_identical() {
    let p = params(42, 60, 140);

    // Reference: one uninterrupted process.
    let mut uninterrupted = Simulation::new(p.clone());
    uninterrupted.run();

    // Killed run: every 50 sweeps the Simulation is dropped entirely (the
    // "kill") and a fresh one is rebuilt from the checkpoint file alone.
    let path = scratch("kill_resume");
    Simulation::new(p.clone()).checkpoint(&path).unwrap();
    let mut resumes = 0;
    loop {
        let mut sim = Simulation::resume(&path, &p).unwrap();
        if sim.is_complete() {
            break;
        }
        sim.step(50);
        sim.checkpoint(&path).unwrap();
        resumes += 1;
    }
    assert_eq!(resumes, 4, "200 sweeps in 50-sweep incarnations");

    let resumed = Simulation::resume(&path, &p).unwrap();
    // Field, G, RNG, bins, counters: all serialized — compare the bytes.
    let final_a = scratch("kill_resume_a");
    let final_b = scratch("kill_resume_b");
    uninterrupted.checkpoint(&final_a).unwrap();
    resumed.checkpoint(&final_b).unwrap();
    let (a, b) = (
        std::fs::read(&final_a).unwrap(),
        std::fs::read(&final_b).unwrap(),
    );
    assert_eq!(a, b, "final checkpoints must be byte-identical");

    // And the user-visible surface agrees bit-for-bit too.
    assert_eq!(uninterrupted.greens(Spin::Up), resumed.greens(Spin::Up));
    assert_eq!(uninterrupted.greens(Spin::Down), resumed.greens(Spin::Down));
    assert_eq!(
        uninterrupted.observables().density(),
        resumed.observables().density()
    );
    assert_eq!(
        uninterrupted.observables().avg_sign(),
        resumed.observables().avg_sign()
    );
    assert_eq!(
        uninterrupted.acceptance_rate().to_bits(),
        resumed.acceptance_rate().to_bits()
    );

    for f in [&path, &final_a, &final_b] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn run_with_checkpoints_equals_plain_run() {
    let p = params(5, 20, 40);
    let mut plain = Simulation::new(p.clone());
    plain.run();

    let path = scratch("run_with_ckpt");
    let mut checkpointed = Simulation::new(p.clone());
    checkpointed.run_with_checkpoints(&path, 17).unwrap();
    assert!(checkpointed.is_complete());

    assert_eq!(plain.greens(Spin::Up), checkpointed.greens(Spin::Up));
    assert_eq!(
        plain.observables().density(),
        checkpointed.observables().density()
    );

    // The file on disk holds the completed state: resuming yields the same
    // observables with no sweeps left to run.
    let resumed = Simulation::resume(&path, &p).unwrap();
    assert!(resumed.is_complete());
    assert_eq!(
        resumed.observables().density(),
        plain.observables().density()
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_under_wrong_params_is_rejected() {
    let p = params(13, 5, 5);
    let path = scratch("fingerprint");
    let mut sim = Simulation::new(p.clone());
    sim.step(3);
    sim.checkpoint(&path).unwrap();

    // Any physics knob change must be refused (the RNG stream and state
    // layout would silently diverge), with a clean error naming the cause.
    let other = params(14, 5, 5);
    let err = Simulation::resume(&path, &other).unwrap_err();
    assert!(
        err.to_string().contains("does not match"),
        "unexpected error: {err}"
    );

    // The recovery policy is deliberately *not* fingerprinted: resuming
    // under a different policy is safe (it never consumes sweep RNG).
    let relaxed = p.clone().with_recovery(dqmc::RecoveryPolicy::disabled());
    assert!(Simulation::resume(&path, &relaxed).is_ok());
    let _ = std::fs::remove_file(&path);
}
