//! End-to-end physics validation: DQMC against exact diagonalisation.
//!
//! The DQMC estimates carry two error sources — O(Δτ²) Trotter
//! discretisation and Monte Carlo noise — so the comparisons use small Δτ,
//! enough sweeps, and tolerances a few times the combined error scale.

use dqmc::{ModelParams, SimParams, Simulation};
use ed::{HubbardEd, ThermalEnsemble};
use gpusim::{Device, DeviceBackend, DeviceSpec, FaultPlan};
use lattice::Lattice;

/// Runs DQMC on the 2-site dimer and returns the simulation.
fn run_dimer(u: f64, mu_tilde: f64, beta: f64, dtau: f64, seed: u64) -> Simulation {
    let slices = (beta / dtau).round() as usize;
    let model = ModelParams::new(Lattice::square(2, 1, 1.0), u, mu_tilde, dtau, slices);
    let mut sim = Simulation::new(
        SimParams::new(model)
            .with_sweeps(400, 4000)
            .with_seed(seed)
            .with_cluster_size(10)
            .with_bin_size(20),
    );
    sim.run();
    sim
}

fn ed_dimer(u: f64, mu_tilde: f64, beta: f64) -> ThermalEnsemble {
    ThermalEnsemble::new(
        HubbardEd::new(Lattice::square(2, 1, 1.0), u, mu_tilde),
        beta,
    )
}

#[test]
fn dimer_half_filling_observables() {
    let (u, beta, dtau) = (4.0, 2.0, 0.05);
    let sim = run_dimer(u, 0.0, beta, dtau, 42);
    let exact = ed_dimer(u, 0.0, beta);
    let obs = sim.observables();

    let (rho, rho_err) = obs.density();
    assert!(
        (rho - exact.density()).abs() < 0.01 + 4.0 * rho_err,
        "density: dqmc {rho}±{rho_err} vs ed {}",
        exact.density()
    );

    let (docc, docc_err) = obs.double_occupancy();
    assert!(
        (docc - exact.double_occupancy()).abs() < 0.01 + 4.0 * docc_err,
        "double occ: dqmc {docc}±{docc_err} vs ed {}",
        exact.double_occupancy()
    );

    // Nearest-neighbour spin correlation C_zz(1): ED matrix element (0,1).
    let czz = obs.czz();
    let c_ed = exact.spin_correlation();
    assert!(
        (czz[(1, 0)] - c_ed[(0, 1)]).abs() < 0.03,
        "Czz(1): dqmc {} vs ed {}",
        czz[(1, 0)],
        c_ed[(0, 1)]
    );
    // Same-site C_zz(0).
    assert!(
        (czz[(0, 0)] - c_ed[(0, 0)]).abs() < 0.03,
        "Czz(0): dqmc {} vs ed {}",
        czz[(0, 0)],
        c_ed[(0, 0)]
    );
}

#[test]
fn dimer_doped_sign_weighted_observables() {
    // Away from half filling the sign can fluctuate; the dimer's sign
    // problem is mild, so sign-weighted estimates must still match ED.
    let (u, mu_t, beta, dtau) = (4.0, 0.5, 1.5, 0.05);
    let sim = run_dimer(u, mu_t, beta, dtau, 7);
    let exact = ed_dimer(u, mu_t, beta);
    let obs = sim.observables();

    let (sign, _) = obs.avg_sign();
    assert!(sign > 0.3, "dimer sign should be mild, got {sign}");

    let (rho, rho_err) = obs.density();
    assert!(
        (rho - exact.density()).abs() < 0.02 + 4.0 * rho_err,
        "density: dqmc {rho}±{rho_err} vs ed {}",
        exact.density()
    );
    let (docc, docc_err) = obs.double_occupancy();
    assert!(
        (docc - exact.double_occupancy()).abs() < 0.02 + 4.0 * docc_err,
        "docc: dqmc {docc}±{docc_err} vs ed {}",
        exact.double_occupancy()
    );
}

#[test]
fn dimer_momentum_distribution_matches_ed() {
    let (u, beta, dtau) = (4.0, 2.0, 0.05);
    let sim = run_dimer(u, 0.0, beta, dtau, 11);
    let exact = ed_dimer(u, 0.0, beta);
    let nk_dqmc = sim.observables().momentum_distribution();
    let nk_ed = exact.momentum_distribution();
    for nx in 0..2 {
        assert!(
            (nk_dqmc[(nx, 0)] - nk_ed[(nx, 0)]).abs() < 0.03,
            "n_k[{nx}]: dqmc {} vs ed {}",
            nk_dqmc[(nx, 0)],
            nk_ed[(nx, 0)]
        );
    }
}

#[test]
fn dimer_kinetic_energy_matches_ed() {
    let (u, beta, dtau) = (4.0, 2.0, 0.05);
    let sim = run_dimer(u, 0.0, beta, dtau, 13);
    let exact = ed_dimer(u, 0.0, beta);
    // ED kinetic energy: ⟨H⟩ − U⟨n₊n₋⟩·N + μeff·⟨N̂⟩ (subtract the non-
    // kinetic pieces of H; μeff = μ̃ + U/2 = 2).
    let n = 2.0;
    let ekin_ed =
        exact.energy() - u * exact.double_occupancy() * n + (0.0 + u / 2.0) * exact.density() * n;
    let (ekin, err) = sim.observables().kinetic_energy();
    assert!(
        (ekin * n - ekin_ed).abs() < 0.05 + 4.0 * err * n,
        "kinetic: dqmc {} vs ed {ekin_ed}",
        ekin * n
    );
}

#[test]
fn dimer_unequal_time_greens_matches_ed() {
    // Dynamic measurements: G_loc(τ) on the cluster-spaced τ grid against
    // the exact spectral representation.
    let (u, beta, dtau): (f64, f64, f64) = (4.0, 2.0, 0.05);
    let slices = (beta / dtau).round() as usize; // 40
    let model = ModelParams::new(Lattice::square(2, 1, 1.0), u, 0.0, dtau, slices);
    let mut sim = Simulation::new(
        SimParams::new(model)
            .with_sweeps(300, 1500)
            .with_seed(21)
            .with_cluster_size(10)
            .with_bin_size(20)
            .with_unequal_time(true),
    );
    sim.run();
    let tdm = sim.time_dependent().expect("enabled");
    let exact = ed_dimer(u, 0.0, beta);
    for (tau, (g, gerr)) in tdm.taus().iter().zip(tdm.gloc()) {
        let reference = exact.greens_tau_local(*tau);
        assert!(
            (g - reference).abs() < 0.02 + 4.0 * gerr,
            "G_loc({tau}): dqmc {g}±{gerr} vs ed {reference}"
        );
    }
}

#[test]
fn heat_bath_acceptance_matches_ed() {
    // The heat-bath rule samples the same distribution; only the
    // autocorrelation differs.
    let (u, beta, dtau): (f64, f64, f64) = (4.0, 2.0, 0.05);
    let slices = (beta / dtau).round() as usize;
    let model = ModelParams::new(Lattice::square(2, 1, 1.0), u, 0.0, dtau, slices);
    let mut sim = Simulation::new(
        SimParams::new(model)
            .with_sweeps(400, 4000)
            .with_seed(77)
            .with_bin_size(20)
            .with_acceptance(dqmc::Acceptance::HeatBath),
    );
    sim.run();
    let exact = ed_dimer(u, 0.0, beta);
    let (docc, err) = sim.observables().double_occupancy();
    assert!(
        (docc - exact.double_occupancy()).abs() < 0.01 + 4.0 * err,
        "heat bath docc {docc}±{err} vs ed {}",
        exact.double_occupancy()
    );
    // Heat bath accepts less often than Metropolis by construction.
    assert!(sim.acceptance_rate() < 0.9);
}

#[test]
fn dimer_under_fault_plan_with_recovery_matches_ed() {
    // Physics must survive the fault ladder: run the half-filled dimer on
    // the simulated device with a storm of scripted faults (one-shot
    // corruptions heal bit-identically; persistent launch failures force a
    // host fallback mid-run) and still reproduce the ED observables.
    let (u, beta, dtau): (f64, f64, f64) = (4.0, 2.0, 0.05);
    let slices = (beta / dtau).round() as usize;
    let model = ModelParams::new(Lattice::square(2, 1, 1.0), u, 0.0, dtau, slices);
    let mut plan = FaultPlan::new()
        .with_seed(5)
        .corrupt_transfer(2)
        .corrupt_transfer(150)
        .oom_at_alloc(3)
        .oom_at_alloc(900);
    // A burst of consecutive launch failures deep into the run: retries are
    // exhausted and the ladder must drop to the host backend for good.
    for n in 5_000..5_200 {
        plan = plan.fail_launch(n);
    }
    let mut dev = Device::new(DeviceSpec::tesla_c2050());
    dev.arm_faults(plan);
    let mut sim = Simulation::new(
        SimParams::new(model)
            .with_sweeps(400, 4000)
            .with_seed(19)
            .with_cluster_size(10)
            .with_bin_size(20),
    )
    .with_backend(Box::new(DeviceBackend::new(dev)));
    sim.run();

    let log = sim.recovery_log();
    assert!(
        log.total() > 0,
        "the fault plan must have fired: {}",
        log.summary()
    );

    let exact = ed_dimer(u, 0.0, beta);
    let obs = sim.observables();
    let (rho, rho_err) = obs.density();
    assert!(
        (rho - exact.density()).abs() < 0.01 + 4.0 * rho_err,
        "density under faults: dqmc {rho}±{rho_err} vs ed {}",
        exact.density()
    );
    let (docc, docc_err) = obs.double_occupancy();
    assert!(
        (docc - exact.double_occupancy()).abs() < 0.01 + 4.0 * docc_err,
        "double occ under faults: dqmc {docc}±{docc_err} vs ed {}",
        exact.double_occupancy()
    );
}

#[test]
fn trotter_error_shrinks_with_dtau() {
    // The systematic deviation from ED must decrease as Δτ → 0 (O(Δτ²)).
    let (u, beta) = (6.0, 2.0);
    let exact = ed_dimer(u, 0.0, beta).double_occupancy();
    let run = |dtau: f64, seed| {
        let sim = run_dimer(u, 0.0, beta, dtau, seed);
        let (d, _) = sim.observables().double_occupancy();
        (d - exact).abs()
    };
    // Average two seeds to tame MC noise.
    let coarse = (run(0.25, 1) + run(0.25, 2)) / 2.0;
    let fine = (run(0.05, 3) + run(0.05, 4)) / 2.0;
    assert!(
        fine < coarse + 0.005,
        "finer Δτ should not be farther from ED: fine {fine} vs coarse {coarse}"
    );
}
