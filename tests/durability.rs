//! Tier: durability. Crash-point–proven recovery for every on-disk
//! format the workspace publishes.
//!
//! Every durable artifact — `DQCP` checkpoints, `DQRC` cache entries,
//! `DQSM` manifests, `DQSR` shard reports — goes through the single
//! audited write path, [`util::vfs::write_atomic`]: temp file, write,
//! fsync, rename, parent-directory fsync. This tier proves the claim
//! that sequence exists to make: **a crash between any two of those
//! syscalls loses nothing**. For each format and each of the five crash
//! points we
//!
//! 1. seed an `old` artifact, then crash a process (or simulate a crash
//!    in-process) while it publishes `new`;
//! 2. assert the destination still holds `old` byte-for-byte — the
//!    adversarial residue (empty temp, torn temp, rolled-back rename)
//!    never reaches the published name;
//! 3. recover the way the products do — scrub the temp debris, rerun
//!    the write — and assert the result is byte-identical to an
//!    uninterrupted `new` write.
//!
//! The process-kill tests spawn the `durability-probe` binary with a
//! `DQMC_VFS_FAULTS` crash script, so the write that dies is the real
//! production writer for that format, killed by a real `exit` at the
//! scripted syscall. The property test sweeps arbitrary payloads, crash
//! ordinals, and torn-write seeds over the raw write path: the reader
//! sees old or new, never a byte of anything else.

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::process::Command;
use util::vfs::{self, CrashMode, FaultPlan};

/// The fixed key `durability-probe write dqrc` stores under (kept in
/// sync with `src/bin/durability-probe.rs`).
const DQRC_KEY: u64 = 0xD0_0DF00D;

/// Per-test scratch dir (pid-scoped; cleaned on entry).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dqmc_durability_{}_{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// The unique scratch-dir name, used as the fault-plan scope so a plan
/// armed by this test never intercepts another test's writes.
fn scope_of(dir: &Path) -> String {
    dir.file_name().expect("named dir").to_string_lossy().into_owned()
}

/// Atomic-write temp debris (`.{name}.{pid}.{seq}.tmp`) in `dir`.
fn tmp_debris(dir: &Path) -> Vec<String> {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .filter(|n| n.starts_with('.') && n.ends_with(".tmp"))
                .collect()
        })
        .unwrap_or_default()
}

// ---------------------------------------------------------------------
// In-process crash enumeration: simulate mode, every format, every
// crash point. The writers here are the real production entry points.
// ---------------------------------------------------------------------

/// The probe's simulation parameters (`src/bin/durability-probe.rs`).
fn probe_params() -> dqmc::SimParams {
    let model = dqmc::ModelParams::new(lattice::Lattice::square(2, 2, 1.0), 4.0, 0.1, 0.125, 6);
    dqmc::SimParams::new(model)
        .with_sweeps(2, 4)
        .with_seed(7)
        .with_cluster_size(3)
        .with_bin_size(2)
}

fn probe_summary(new: bool) -> sched::PointSummary {
    sched::PointSummary {
        point: 3,
        u: if new { 6.0 } else { 2.0 },
        beta: 1.5,
        slices: 12,
        chains_ok: 2,
        chains_failed: 0,
        bin_count: if new { 8 } else { 4 },
        scalars: None,
        mean_acceptance: 0.5,
        max_wrap_error: 1e-9,
        recovery_events: 0,
        preemptions: 0,
        device_quanta: 0,
        host_quanta: 0,
        device_seconds: 0.0,
    }
}

/// One format's production writer: publishes the `old` or `new` variant
/// into `dir`, returning the destination path. Deterministic: the same
/// variant always produces the same bytes.
type Writer = fn(new: bool, dir: &Path) -> (PathBuf, Result<(), String>);

fn write_dqcp(new: bool, dir: &Path) -> (PathBuf, Result<(), String>) {
    let dst = dir.join("probe.dqcp");
    let mut sim = dqmc::Simulation::new(probe_params());
    sim.step(if new { 5 } else { 2 });
    let r = dqmc::checkpoint::save(&sim, &dst).map_err(|e| e.to_string());
    (dst, r)
}

fn write_dqrc(new: bool, dir: &Path) -> (PathBuf, Result<(), String>) {
    let dst = dir.join(format!("{DQRC_KEY:016x}.dqrc"));
    let r = serve::ResultCache::open(dir)
        .and_then(|c| c.store(DQRC_KEY, &probe_summary(new)))
        .map_err(|e| e.to_string());
    (dst, r)
}

fn write_dqsm(new: bool, dir: &Path) -> (PathBuf, Result<(), String>) {
    let dst = dir.join("probe.dqsm");
    let m = fleet::ShardManifest {
        shard: 0,
        nshards: 2,
        fingerprint: 0xFEED_0000_0000_0001,
        grid_text: "lx = 2\nly = 2\nu = 2.0\nbeta = 1.0\n".into(),
        points: if new { vec![0, 1, 2] } else { vec![0, 1] },
    };
    let r = m.write(&dst).map_err(|e| e.to_string());
    (dst, r)
}

fn write_dqsr(new: bool, dir: &Path) -> (PathBuf, Result<(), String>) {
    let dst = dir.join("probe.dqsr");
    let r = fleet::ShardReport {
        shard: 0,
        nshards: 1,
        fingerprint: 0xFEED_0000_0000_0002,
        seed: 42,
        chains: 2,
        warmup: 2,
        sweeps: 4,
        assigned: vec![3, 4],
        fragments: if new {
            vec![probe_summary(false), probe_summary(true)]
        } else {
            vec![probe_summary(false)]
        },
        failed_chains: 0,
    }
    .write(&dst)
    .map_err(|e| e.to_string());
    (dst, r)
}

/// The enumeration: for every crash point k, seed `old`, simulate a
/// crash at syscall k while writing `new`, and prove (a) the
/// destination still holds `old`, (b) it still *decodes* as `old`
/// through the format's reader, (c) scrub + rewrite recovers to bytes
/// identical to an uninterrupted `new` write.
fn crash_points_recover(tag: &str, write: Writer, decodes: &dyn Fn(&[u8]) -> bool) {
    // Uninterrupted references, in their own directory.
    let refdir = scratch(&format!("{tag}_ref"));
    let (refdst, r) = write(true, &refdir);
    r.expect("reference new write");
    let new_ref = std::fs::read(&refdst).expect("reference bytes");

    let dir = scratch(tag);
    let scope = scope_of(&dir);
    for k in 1..=5u64 {
        let (dst, r) = write(false, &dir);
        r.unwrap_or_else(|e| panic!("k={k}: seeding old failed: {e}"));
        let old = std::fs::read(&dst).expect("old bytes");
        assert!(decodes(&old), "k={k}: seeded artifact must decode");

        {
            let _g = vfs::arm(
                FaultPlan::new()
                    .with_scope(&scope)
                    .with_seed(k)
                    .crash_at(k, CrashMode::Simulate),
            );
            let (_, r) = write(true, &dir);
            assert!(r.is_err(), "k={k}: crashed write must report failure");
            assert!(!vfs::armed(), "k={k}: a simulated crash disarms the plan");
        }

        // The published name is untouched by the crash — bytes and
        // semantics both.
        let residue = std::fs::read(&dst).unwrap_or_else(|e| {
            panic!("k={k}: destination vanished after crash: {e}")
        });
        assert_eq!(residue, old, "k={k}: crash residue reached the destination");
        assert!(decodes(&residue), "k={k}: destination no longer decodes");

        // Recovery: scrub the debris, rerun the write.
        let report = vfs::scrub_tmp(&dir).expect("scrub");
        let expect_debris = u64::from(k >= 2);
        assert_eq!(
            report.count(),
            expect_debris,
            "k={k}: unexpected debris {:?}",
            report.removed
        );
        let (_, r) = write(true, &dir);
        r.unwrap_or_else(|e| panic!("k={k}: recovery write failed: {e}"));
        assert_eq!(
            std::fs::read(&dst).expect("recovered bytes"),
            new_ref,
            "k={k}: recovery is not byte-identical to an uninterrupted write"
        );
        std::fs::remove_file(&dst).expect("reset for next crash point");
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&refdir);
}

#[test]
fn dqcp_checkpoint_survives_every_crash_point() {
    let params = probe_params();
    crash_points_recover("dqcp", write_dqcp, &|bytes| {
        dqmc::checkpoint::from_bytes(bytes, &params).is_ok()
    });
}

#[test]
fn dqrc_cache_entry_survives_every_crash_point() {
    crash_points_recover("dqrc", write_dqrc, &|bytes| !bytes.is_empty());
}

#[test]
fn dqsm_manifest_survives_every_crash_point() {
    crash_points_recover("dqsm", write_dqsm, &|bytes| {
        fleet::ShardManifest::decode(bytes).is_ok()
    });
}

#[test]
fn dqsr_report_survives_every_crash_point() {
    crash_points_recover("dqsr", write_dqsr, &|bytes| {
        fleet::ShardReport::decode(bytes).is_ok()
    });
}

// ---------------------------------------------------------------------
// Process-kill tests: the probe binary really dies (exit 84) at the
// scripted syscall, and a fresh process recovers.
// ---------------------------------------------------------------------

fn run_probe(format: &str, variant: &str, path: &Path, faults: Option<&str>) -> Option<i32> {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_durability-probe"));
    cmd.args(["write", format, variant]).arg(path);
    match faults {
        Some(dsl) => cmd.env(vfs::ENV_FAULTS, dsl),
        None => cmd.env_remove(vfs::ENV_FAULTS),
    };
    cmd.status().expect("spawn durability-probe").code()
}

/// The kill flow for the plain-file formats (`dqcp`, `dqsm`, `dqsr`):
/// the recovery step is what `dqmc-run` does on resume/merge — scrub
/// the directory, rerun the writer.
fn killed_probe_recovers(format: &str) {
    let refdir = scratch(&format!("kill_{format}_ref"));
    let refdst = refdir.join(format!("probe.{format}"));
    assert_eq!(run_probe(format, "new", &refdst, None), Some(0));
    let new_ref = std::fs::read(&refdst).expect("reference bytes");

    let dir = scratch(&format!("kill_{format}"));
    let dst = dir.join(format!("probe.{format}"));
    let scope = scope_of(&dir);
    for k in 1..=5u64 {
        assert_eq!(run_probe(format, "old", &dst, None), Some(0), "k={k}: seed");
        let old = std::fs::read(&dst).expect("old bytes");

        let dsl = format!("scope={scope};seed={k};crash@{k}");
        assert_eq!(
            run_probe(format, "new", &dst, Some(&dsl)),
            Some(vfs::CRASH_EXIT_CODE),
            "k={k}: probe must die at the scripted syscall"
        );
        assert_eq!(
            std::fs::read(&dst).expect("post-kill bytes"),
            old,
            "k={k}: a killed process disturbed the published file"
        );

        let report = vfs::scrub_tmp(&dir).expect("scrub");
        assert_eq!(report.count(), u64::from(k >= 2), "k={k}: debris count");
        assert_eq!(run_probe(format, "new", &dst, None), Some(0), "k={k}: recovery");
        assert_eq!(
            std::fs::read(&dst).expect("recovered bytes"),
            new_ref,
            "k={k}: recovery after a real kill is not byte-identical"
        );
        std::fs::remove_file(&dst).expect("reset");
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&refdir);
}

#[test]
fn killed_dqcp_writer_recovers_byte_identically() {
    killed_probe_recovers("dqcp");
}

#[test]
fn killed_dqsm_writer_recovers_byte_identically() {
    killed_probe_recovers("dqsm");
}

#[test]
fn killed_dqsr_writer_recovers_byte_identically() {
    killed_probe_recovers("dqsr");
}

#[test]
fn killed_dqrc_writer_recovers_through_the_cache_scrub() {
    // The cache recovers differently: `ResultCache::open` scrubs, so a
    // plain rerun of the probe is the whole recovery procedure.
    let refdir = scratch("kill_dqrc_ref");
    assert_eq!(run_probe("dqrc", "new", &refdir, None), Some(0));
    let new_ref =
        std::fs::read(refdir.join(format!("{DQRC_KEY:016x}.dqrc"))).expect("reference bytes");

    let dir = scratch("kill_dqrc");
    let dst = dir.join(format!("{DQRC_KEY:016x}.dqrc"));
    let scope = scope_of(&dir);
    for k in 1..=5u64 {
        assert_eq!(run_probe("dqrc", "old", &dir, None), Some(0), "k={k}: seed");
        let old = std::fs::read(&dst).expect("old bytes");

        let dsl = format!("scope={scope};seed={k};crash@{k}");
        assert_eq!(
            run_probe("dqrc", "new", &dir, Some(&dsl)),
            Some(vfs::CRASH_EXIT_CODE),
            "k={k}: probe must die at the scripted syscall"
        );
        assert_eq!(std::fs::read(&dst).expect("post-kill"), old, "k={k}: entry moved");

        // No manual scrub: the next open does it.
        assert_eq!(run_probe("dqrc", "new", &dir, None), Some(0), "k={k}: recovery");
        assert!(tmp_debris(&dir).is_empty(), "k={k}: open left debris behind");
        assert_eq!(
            std::fs::read(&dst).expect("recovered bytes"),
            new_ref,
            "k={k}: cache recovery is not byte-identical"
        );
        std::fs::remove_file(&dst).expect("reset");
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&refdir);
}

// ---------------------------------------------------------------------
// Property sweep: arbitrary payloads, every fault the plan can inject —
// the destination only ever holds old or new, never a torn byte.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_payload_any_crash_point_is_old_or_new_never_torn(
        old in proptest::collection::vec(0u8..=255, 0..96),
        new in proptest::collection::vec(0u8..=255, 0..96),
        k in 1u64..=5,
        seed in 0u64..1000,
    ) {
        let dir = scratch("prop_crash");
        let scope = scope_of(&dir);
        let dst = dir.join("payload.bin");
        vfs::write_atomic(&dst, &old).expect("seed old");
        {
            let _g = vfs::arm(
                FaultPlan::new()
                    .with_scope(&scope)
                    .with_seed(seed)
                    .crash_at(k, CrashMode::Simulate),
            );
            prop_assert!(vfs::write_atomic(&dst, &new).is_err());
        }
        prop_assert_eq!(&std::fs::read(&dst).expect("residue"), &old);
        vfs::scrub_tmp(&dir).expect("scrub");
        vfs::write_atomic(&dst, &new).expect("recovery");
        prop_assert_eq!(&std::fs::read(&dst).expect("recovered"), &new);
        prop_assert!(tmp_debris(&dir).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn any_injected_error_leaves_old_intact_and_no_debris(
        old in proptest::collection::vec(0u8..=255, 1..96),
        new in proptest::collection::vec(0u8..=255, 1..96),
        which in 0usize..5,
        seed in 0u64..1000,
    ) {
        let dir = scratch("prop_fault");
        let scope = scope_of(&dir);
        let dst = dir.join("payload.bin");
        vfs::write_atomic(&dst, &old).expect("seed old");
        let plan = match which {
            0 => FaultPlan::new().fail_create(1),
            1 => FaultPlan::new().enospc(1),
            2 => FaultPlan::new().short_write(1),
            3 => FaultPlan::new().fail_fsync(1),
            _ => FaultPlan::new().fail_rename(1),
        };
        {
            let _g = vfs::arm(plan.with_scope(&scope).with_seed(seed));
            prop_assert!(vfs::write_atomic(&dst, &new).is_err());
        }
        // Error paths clean their own temp file; nothing to scrub.
        prop_assert_eq!(&std::fs::read(&dst).expect("residue"), &old);
        prop_assert!(tmp_debris(&dir).is_empty());
        vfs::write_atomic(&dst, &new).expect("retry succeeds unarmed");
        prop_assert_eq!(&std::fs::read(&dst).expect("recovered"), &new);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
