//! Property tests of the checkpoint codec through the file API: round-trip
//! bit-identity on arbitrary mid-run states, checksum rejection of every
//! single-byte corruption, clean version-mismatch errors, and the guarantee
//! that a truncated file errors instead of panicking or over-allocating.

use dqmc::checkpoint::{load, save, CheckpointError};
use dqmc::{ModelParams, SimParams, Simulation};
use lattice::Lattice;
use proptest::prelude::*;
use std::path::PathBuf;
use util::codec::CodecError;

/// Strategy: a small mid-run simulation state (varied model, seed, progress).
fn arbitrary_state() -> impl Strategy<Value = (SimParams, usize)> {
    (2usize..=3, 4usize..=8, 0.0f64..6.0, 0u64..1000, 0usize..12).prop_map(
        |(side, slices, u, seed, steps)| {
            let model = ModelParams::new(Lattice::square(side, 2, 1.0), u, 0.1, 0.125, slices);
            let p = SimParams::new(model)
                .with_sweeps(4, 8)
                .with_seed(seed)
                .with_cluster_size(slices.min(3))
                .with_bin_size(2);
            (p, steps)
        },
    )
}

/// Per-test scratch path. Cases within one test run sequentially, so a
/// single path per test is race-free; the pid keeps parallel *processes*
/// apart.
fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dqmc_codec_{}_{}.ckpt", tag, std::process::id()))
}

fn state_bytes(p: &SimParams, steps: usize, tag: &str) -> (Vec<u8>, PathBuf) {
    let mut sim = Simulation::new(p.clone());
    sim.step(steps);
    let path = scratch(tag);
    save(&sim, &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    (bytes, path)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn round_trip_is_bit_identical((p, steps) in arbitrary_state()) {
        let (bytes, path) = state_bytes(&p, steps, "rt");
        let loaded = load(&path, &p).unwrap();
        // Re-serializing the loaded state reproduces the file byte-for-byte.
        save(&loaded, &path).unwrap();
        let again = std::fs::read(&path).unwrap();
        prop_assert_eq!(bytes, again);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn every_single_byte_corruption_is_rejected((p, steps) in arbitrary_state()) {
        let (bytes, path) = state_bytes(&p, steps, "corrupt");
        // Flip one bit in every byte position; every variant must error —
        // the CRC covers the payload and the header fields are validated.
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            std::fs::write(&path, &bad).unwrap();
            prop_assert!(
                load(&path, &p).is_err(),
                "corruption at byte {} of {} went undetected",
                pos,
                bytes.len()
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn version_mismatch_is_a_clean_error((p, steps) in arbitrary_state()) {
        let (mut bytes, path) = state_bytes(&p, steps, "ver");
        // Bytes 4..8 are the little-endian format version.
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        match load(&path, &p) {
            Err(CheckpointError::Codec(CodecError::BadVersion { found, expected })) => {
                prop_assert_eq!(found, 99);
                prop_assert_eq!(expected, dqmc::checkpoint::VERSION);
            }
            Err(other) => prop_assert!(false, "expected BadVersion, got {other}"),
            Ok(_) => prop_assert!(false, "tampered version accepted"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn any_truncation_errors_without_panic((p, steps) in arbitrary_state()) {
        let (bytes, path) = state_bytes(&p, steps, "trunc");
        // Every short prefix, plus mid-payload cuts, must fail cleanly — in
        // particular the length-prefixed vector reads must validate against
        // the remaining bytes instead of trusting a huge claimed length.
        let cuts: Vec<usize> = (0..bytes.len().min(64))
            .chain([bytes.len() / 2, bytes.len() * 3 / 4, bytes.len() - 1])
            .collect();
        for cut in cuts {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            prop_assert!(load(&path, &p).is_err(), "truncation to {cut} accepted");
        }
        let _ = std::fs::remove_file(&path);
    }
}
