//! Tier: chaos. Seeded fault storms against the scheduler's health layer.
//!
//! The determinism tier (`tests/sched_determinism.rs`) proves the *happy*
//! schedules are invisible in the physics. This tier turns every health
//! mechanism on at once — sick windows, fail-slow latency inflation with
//! the quantum watchdog armed, wedged devices, circuit-breaker quarantine
//! with probation probes — and proves three things:
//!
//! 1. the pooled observables are **byte-identical** to a clean serial run
//!    (chaos reshapes the schedule, never the physics);
//! 2. the trace stream shows each mechanism actually fired (soft-deadline
//!    parks, a hard-deadline worker loss, a breaker open → probation probe
//!    → re-admission cycle);
//! 3. a pure sick-device storm completes with **zero panics caught** and
//!    zero failed jobs — classification carries the whole failure path;
//!    `catch_unwind` in the workers is a backstop that never engages.
//!
//! Every fault here is scripted and keyed to logical clocks (launch
//! ordinals, simulated device seconds, lease-request counts), so the storm
//! replays identically on any machine.

use dqmc::{RunToken, Simulation};
use gpusim::{BreakerPolicy, DevicePool, DeviceSpec};
use sched::{EventLog, GridSpec, SchedConfig, TraceEvent};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Physics section shared by the clean baseline and every storm grid: the
/// determinism contract says these keys (plus the seed) fix the
/// observables bytes.
const PHYSICS: &str = "
    lx = 2
    ly = 2
    u = 2.0, 4.0
    beta = 1.0      # 8 slices
    chains = 2
    warmup = 4
    sweeps = 8
    bin_size = 2
    cluster_size = 4
    seed = 11
";

fn grid(schedule_keys: &str) -> GridSpec {
    GridSpec::parse(&format!("{PHYSICS}\n{schedule_keys}\n")).expect("chaos grid parses")
}

/// Serial host-only reference for the shared physics.
fn clean_baseline() -> String {
    let cfg = SchedConfig {
        workers: 1,
        devices: 0,
        ..SchedConfig::default()
    };
    sched::run_sweep(&grid("devices = 0"), &cfg, &EventLog::new()).observables_json()
}

/// Calibrates the quantum watchdog budget: runs one chain of `spec` clean
/// on a pool device with a cost meter attached and returns the most
/// expensive quantum's logical cost in seconds. Deterministic — the device
/// clock is analytic, not wall time.
fn max_clean_quantum_cost(spec: &GridSpec, quantum: usize) -> f64 {
    let pool = DevicePool::new(DeviceSpec::tesla_c2050(), 1);
    let lease = pool.try_lease_excluding(&[]).expect("fresh pool grants");
    let mut backend = lease.backend(None);
    let meter = Arc::new(AtomicU64::new(0));
    backend.device_mut().set_cost_meter(Arc::clone(&meter));
    let point = &spec.points()[0];
    let mut sim = Simulation::new(spec.chain_params(point, 0)).with_backend(Box::new(backend));
    let token = RunToken::new();
    let mut last = 0u64;
    let mut max_s = 0.0f64;
    while !sim.is_complete() {
        sim.try_step(quantum, &token).expect("clean device run");
        let now = meter.load(Ordering::Relaxed);
        max_s = max_s.max((now - last) as f64 / 1e9);
        last = now;
    }
    max_s
}

/// The full storm: slot 0 is intermittently sick (heals once the breaker
/// opens — the re-admission path), slot 1 is persistently fail-slow (the
/// watchdog path: numerics exact, logical cost inflated ~4·10⁹×), slot 2
/// persistently wedges its first launch (the hard-deadline path).
fn storm_grid() -> GridSpec {
    grid(
        "devices = 3\n\
         slot_faults = sick@0:1-3, slow@1:1:4000000000!, wedge@2:1!",
    )
}

fn storm_config(spec: &GridSpec) -> SchedConfig {
    // Three clean worst-case quanta of headroom: no honest quantum can trip
    // the soft deadline, while one inflated launch overshoots it by orders
    // of magnitude.
    let budget_s = 3.0 * max_clean_quantum_cost(spec, 2);
    assert!(
        budget_s > 0.0 && budget_s < 1.0,
        "calibration out of range: {budget_s}"
    );
    SchedConfig {
        workers: 3,
        devices: 3,
        quantum: 2,
        yield_every_quanta: 1, // re-place after every quantum: maximum churn
        job_retries: 1,
        soft_quantum_cost_s: budget_s,
        // One strike opens the breaker: only one job pays per sick slot, so
        // later (non-excluded) jobs are available to run probation probes.
        breaker: BreakerPolicy {
            strikes: 1,
            window: 8,
            probation_backoff: 2,
        },
        ..SchedConfig::default()
    }
}

#[test]
fn storm_observables_are_byte_identical_to_clean_run() {
    let spec = storm_grid();
    let cfg = storm_config(&spec);
    let events = EventLog::new();
    let report = sched::run_sweep(&spec, &cfg, &events);

    // The storm completed: sick classification carried every failure, the
    // panic backstop never engaged, and no job burned its retry budget.
    assert_eq!(report.failed_jobs, 0, "sick storms must not fail jobs");
    assert_eq!(report.panics_caught, 0, "classified errors must not unwind");

    // And it was invisible in the physics.
    assert_eq!(
        report.observables_json(),
        clean_baseline(),
        "fault storm leaked into the observables bytes"
    );
}

#[test]
fn storm_trace_proves_every_health_mechanism_fired() {
    let spec = storm_grid();
    let cfg = storm_config(&spec);
    let events = EventLog::new();
    let report = sched::run_sweep(&spec, &cfg, &events);
    let trace = events.snapshot();

    // Soft deadlines: sick launches on slot 0 park cooperatively, and the
    // watchdog catches the fail-slow device on slot 1 — a park on slot 1
    // can *only* come from the quantum-cost budget (its numerics are clean).
    assert!(
        trace
            .iter()
            .any(|e| matches!(e, TraceEvent::SoftDeadline { .. })),
        "no soft-deadline park in the storm trace"
    );
    assert!(
        trace
            .iter()
            .any(|e| matches!(e, TraceEvent::SoftDeadline { slot: 1, .. })),
        "quantum watchdog never caught the fail-slow device"
    );
    assert!(report.soft_parks >= 2, "report undercounts soft parks");

    // Hard deadline: the wedged device on slot 2 costs a worker its
    // placement; the job is resurrected from its parked image.
    assert!(
        trace
            .iter()
            .any(|e| matches!(e, TraceEvent::WorkerLost { slot: 2, .. })),
        "wedged device never produced a worker loss"
    );
    assert!(report.worker_losses >= 1);

    // Breaker lifecycle on the healing slot 0: opened → probation probe →
    // re-admitted, in that order.
    let open_at = trace
        .iter()
        .position(|e| matches!(e, TraceEvent::BreakerOpen { slot: 0, .. }))
        .expect("breaker never opened on the sick slot");
    let probe_at = trace
        .iter()
        .position(|e| matches!(e, TraceEvent::ProbeGranted { slot: 0 }))
        .expect("quarantined slot never got a probation probe");
    let readmit_at = trace
        .iter()
        .position(|e| matches!(e, TraceEvent::SlotReadmitted { slot: 0 }))
        .expect("healed slot was never re-admitted");
    assert!(
        open_at < probe_at && probe_at < readmit_at,
        "breaker lifecycle out of order: open {open_at}, probe {probe_at}, readmit {readmit_at}"
    );
    assert!(report.quarantines >= 1 && report.probes >= 1 && report.readmissions >= 1);
}

#[test]
fn storm_is_reproducible_run_to_run() {
    let spec = storm_grid();
    let cfg = storm_config(&spec);
    let a = sched::run_sweep(&spec, &cfg, &EventLog::new()).observables_json();
    let b = sched::run_sweep(&spec, &cfg, &EventLog::new()).observables_json();
    assert_eq!(
        a, b,
        "storm physics must be reproducible despite racing workers"
    );
}

#[test]
fn fault_storm_over_the_socket_streams_clean_bytes() {
    // The service tier, under fire: a grid whose every device-placed job
    // is armed with one-shot launch failures and transfer corruption is
    // submitted over a real TCP socket. The recovery ladder must fire
    // (visible in the Done frame's counters) and the streamed bytes must
    // still equal the in-process clean run — chaos reshapes the schedule,
    // never the physics, and the socket adds nothing.
    use serve::{Client, Server, ServerConfig};

    let storm = "faults = fail_launch:1, corrupt_transfer:3";
    let spec = grid(storm);
    assert!(!spec.faults.is_empty(), "storm grid must arm job faults");

    let server = Server::bind(
        "127.0.0.1:0",
        &ServerConfig {
            service: sched::ServiceConfig {
                workers: 2,
                devices: 2,
                quantum: 2,
                job_retries: 1,
                ..sched::ServiceConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let handle = server.handle();
    let addr = server.local_addr().to_string();
    let accept = std::thread::spawn(move || server.run());

    let outcome = Client::connect_retry(&addr, 50, std::time::Duration::from_millis(20))
        .expect("connect")
        .submit("chaos", 0, &format!("{PHYSICS}\n{storm}\n"))
        .expect("storm submission");

    assert_eq!(outcome.failed_chains, 0, "one-shot faults must heal");
    assert!(
        outcome.recovery_events > 0,
        "the storm never engaged the recovery ladder"
    );
    assert_eq!(
        outcome.observables,
        clean_baseline(),
        "socket-served storm leaked into the observables bytes"
    );

    handle.request_shutdown();
    let _ = accept.join();
}

#[test]
fn hang_class_parks_softly_without_worker_loss() {
    // A non-wedged hang is the *soft* deadline: the simulated watchdog
    // kills the launch, the job parks and excludes the slot, and nobody is
    // declared lost.
    let spec = grid("devices = 1\nchains = 1\nslot_faults = hang@0:1!");
    let cfg = SchedConfig {
        workers: 1,
        devices: 1,
        quantum: 2,
        ..SchedConfig::default()
    };
    let events = EventLog::new();
    let report = sched::run_sweep(&spec, &cfg, &events);
    assert_eq!(report.failed_jobs, 0);
    assert_eq!(report.panics_caught, 0);
    assert!(report.soft_parks >= 1, "hang must park softly");
    assert_eq!(
        report.worker_losses, 0,
        "non-wedged hang is not a worker loss"
    );
    assert_eq!(
        report.observables_json(),
        sched::run_sweep(
            &grid("devices = 0\nchains = 1"),
            &SchedConfig::default(),
            &EventLog::new()
        )
        .observables_json(),
        "hang-and-requeue changed the physics"
    );
}
