//! Tier: service. End-to-end tests of `dqmc-serve` on a real TCP socket.
//!
//! Each test binds an ephemeral port, runs the accept loop on its own
//! thread, and drives it with the DQSF client. The scenarios pin the
//! service contract on top of the scheduler's determinism tier:
//!
//! 1. submit → stream → drain: a served campaign's bytes equal an
//!    in-process `run_sweep` of the same grid;
//! 2. cold miss vs warm hit: the second identical submission returns
//!    byte-identical observables **without enqueueing a single job**;
//! 3. two tenants with interleaved priorities both stream to completion,
//!    each byte-identical to its own baseline;
//! 4. a client that disconnects mid-stream does not poison the queue —
//!    its campaign completes, backfills the cache, and the next client
//!    is served normally;
//! 5. a corrupted cache entry is detected, evicted, and recomputed, with
//!    the recompute again byte-identical.

use sched::{EventLog, GridSpec, SchedConfig, ServiceConfig};
use serve::protocol::{read_frame, write_frame, Frame};
use serve::{Client, Server, ServerConfig, ServerHandle};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

const GRID_A: &str = "
    lx = 2
    ly = 2
    u = 2.0, 4.0
    beta = 1.0
    chains = 2
    warmup = 2
    sweeps = 6
    bin_size = 2
    cluster_size = 4
    seed = 11
";

const GRID_B: &str = "
    lx = 2
    ly = 2
    u = 3.0
    beta = 1.0, 1.5
    chains = 2
    warmup = 2
    sweeps = 6
    bin_size = 2
    cluster_size = 4
    seed = 23
";

/// Serial in-process reference: the bytes the service must reproduce.
fn baseline(grid: &str) -> String {
    let spec = GridSpec::parse(grid).expect("grid parses");
    let cfg = SchedConfig {
        workers: 1,
        devices: 0,
        ..SchedConfig::default()
    };
    sched::run_sweep(&spec, &cfg, &EventLog::new()).observables_json()
}

/// Per-test scratch cache directory (pid-scoped; cleaned on entry).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dqmc_serve_test_{}_{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct TestServer {
    handle: ServerHandle,
    addr: String,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl TestServer {
    fn start(cfg: &ServerConfig) -> TestServer {
        let server = Server::bind("127.0.0.1:0", cfg).expect("bind ephemeral port");
        let handle = server.handle();
        let addr = server.local_addr().to_string();
        let thread = std::thread::spawn(move || server.run());
        TestServer {
            handle,
            addr,
            thread: Some(thread),
        }
    }

    fn client(&self) -> Client {
        Client::connect_retry(&self.addr, 50, Duration::from_millis(20)).expect("connect")
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.request_shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[test]
fn served_campaign_streams_and_matches_in_process_run() {
    let server = TestServer::start(&ServerConfig {
        service: ServiceConfig {
            workers: 2,
            devices: 1,
            quantum: 2,
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    });
    let mut streamed = Vec::new();
    let outcome = server
        .client()
        .submit_with("alice", 1, GRID_A, |p| streamed.push(p.index))
        .expect("submission");

    // Both points streamed (order is completion order), none from cache.
    let mut seen = streamed.clone();
    seen.sort_unstable();
    assert_eq!(seen, vec![0, 1]);
    assert!(outcome.points.iter().all(|p| !p.cached));
    assert_eq!(outcome.cached_points, 0);
    assert_eq!(outcome.computed_points, 2);
    assert_eq!(outcome.jobs_run, 4, "2 points x 2 chains, crowd 1");
    assert_eq!(outcome.failed_chains, 0);

    // The service bytes ARE the engine bytes.
    assert_eq!(outcome.observables, baseline(GRID_A));

    // Each streamed point fragment appears verbatim in the final document.
    for p in &outcome.points {
        assert!(
            outcome.observables.contains(&p.json),
            "streamed point {} not embedded in the final document",
            p.index
        );
    }
}

#[test]
fn warm_cache_hit_is_byte_identical_with_flat_job_counters() {
    let dir = scratch("warm");
    let server = TestServer::start(&ServerConfig {
        service: ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });

    let cold = server
        .client()
        .submit("alice", 0, GRID_A)
        .expect("cold submission");
    assert_eq!(cold.jobs_run, 4);
    assert_eq!(cold.cached_points, 0);
    let jobs_after_cold = server.handle.jobs_submitted();
    assert_eq!(jobs_after_cold, 4);

    let warm = server
        .client()
        .submit("bob", 0, GRID_A)
        .expect("warm submission");
    // Byte identity, disk-only: no jobs were enqueued anywhere.
    assert_eq!(warm.observables, cold.observables);
    assert_eq!(warm.jobs_run, 0);
    assert_eq!(warm.cached_points, 2);
    assert_eq!(warm.computed_points, 0);
    assert!(warm.points.iter().all(|p| p.cached));
    assert_eq!(
        server.handle.jobs_submitted(),
        jobs_after_cold,
        "a warm hit must not enqueue jobs"
    );
    assert_eq!(server.handle.cache_hits(), 2);
    // The per-point stream is byte-identical too, point by point.
    for p in &warm.points {
        let cold_p = cold
            .points
            .iter()
            .find(|q| q.index == p.index)
            .expect("cold run served this point");
        assert_eq!(p.json, cold_p.json);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_tenants_with_interleaved_priorities_both_complete() {
    let server = TestServer::start(&ServerConfig {
        service: ServiceConfig {
            workers: 2,
            quantum: 1, // maximum interleaving between the two campaigns
            ..ServiceConfig::default()
        },
        max_tenant_campaigns: 2,
        ..ServerConfig::default()
    });

    let addr_a = server.addr.clone();
    let addr_b = server.addr.clone();
    let ta = std::thread::spawn(move || {
        Client::connect_retry(&addr_a, 50, Duration::from_millis(20))
            .expect("connect a")
            .submit("alice", 3, GRID_A)
            .expect("tenant a submission")
    });
    let tb = std::thread::spawn(move || {
        Client::connect_retry(&addr_b, 50, Duration::from_millis(20))
            .expect("connect b")
            .submit("bob", 1, GRID_B)
            .expect("tenant b submission")
    });
    let a = ta.join().expect("tenant a thread");
    let b = tb.join().expect("tenant b thread");

    // Both result sets streamed to completion, each with its own bytes —
    // multiplexing through one queue leaked nothing across tenants.
    assert_eq!(a.computed_points, 2);
    assert_eq!(b.computed_points, 2);
    assert_eq!(a.observables, baseline(GRID_A));
    assert_eq!(b.observables, baseline(GRID_B));
    assert_eq!(server.handle.campaigns_completed(), 2);
    assert_eq!(server.handle.active_campaigns(), 0);
}

#[test]
fn disconnect_mid_stream_does_not_poison_the_queue() {
    let dir = scratch("disco");
    let server = TestServer::start(&ServerConfig {
        service: ServiceConfig {
            workers: 1,
            quantum: 2,
            ..ServiceConfig::default()
        },
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });

    // Speak the protocol by hand: submit, read the Accepted frame, then
    // vanish without draining the stream.
    {
        let mut raw = TcpStream::connect(&server.addr).expect("connect raw");
        write_frame(
            &mut raw,
            &Frame::Submit {
                tenant: "ghost".into(),
                priority: 0,
                grid: GRID_A.into(),
            },
        )
        .expect("submit frame");
        match read_frame(&mut raw).expect("accepted frame") {
            Frame::Accepted { jobs, .. } => assert_eq!(jobs, 4),
            other => panic!("expected Accepted, got kind {}", other.kind()),
        }
        // Dropping the stream here closes the socket mid-stream.
    }

    // The orphaned campaign must still run to completion.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while server.handle.campaigns_completed() < 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "orphaned campaign never completed"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(server.handle.active_campaigns(), 0);

    // A fresh client is served normally afterwards...
    let b = server
        .client()
        .submit("alice", 0, GRID_B)
        .expect("post-disconnect submission");
    assert_eq!(b.observables, baseline(GRID_B));

    // ...and the ghost's campaign backfilled the cache on its way out: the
    // same grid now comes back as a full warm hit, byte-identical.
    let warm = server
        .client()
        .submit("alice", 0, GRID_A)
        .expect("warm resubmission");
    assert_eq!(warm.jobs_run, 0);
    assert_eq!(warm.cached_points, 2);
    assert_eq!(warm.observables, baseline(GRID_A));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resilient_resubmission_after_mid_stream_disconnect_is_idempotent() {
    let dir = scratch("resilient");
    let server = TestServer::start(&ServerConfig {
        service: ServiceConfig {
            workers: 1,
            quantum: 2,
            ..ServiceConfig::default()
        },
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });

    // A client loses its connection mid-stream: submit, read Accepted,
    // vanish. The server keeps running the orphaned campaign.
    {
        let mut raw = TcpStream::connect(&server.addr).expect("connect raw");
        write_frame(
            &mut raw,
            &Frame::Submit {
                tenant: "flaky".into(),
                priority: 0,
                grid: GRID_A.into(),
            },
        )
        .expect("submit frame");
        match read_frame(&mut raw).expect("accepted frame") {
            Frame::Accepted { .. } => {}
            other => panic!("expected Accepted, got kind {}", other.kind()),
        }
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while server.handle.campaigns_completed() < 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "orphaned campaign never completed"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The interrupted client's recovery procedure is simply to resubmit:
    // the campaign is content-addressed, so the retry is idempotent — a
    // full warm hit, not a recompute, byte-identical to the baseline.
    let mut streamed = 0usize;
    let outcome = Client::submit_resilient(
        &server.addr,
        "flaky",
        0,
        GRID_A,
        5,
        Duration::from_millis(10),
        |_| streamed += 1,
    )
    .expect("resilient resubmission");
    assert_eq!(outcome.observables, baseline(GRID_A));
    assert_eq!(outcome.jobs_run, 0, "idempotent retry must not recompute");
    assert_eq!(outcome.cached_points, 2);
    assert_eq!(streamed, 2, "every point streams on the surviving attempt");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resilient_submission_fails_cleanly_when_no_server_ever_answers() {
    // A port nobody listens on: the bounded retry loop must give up with
    // the underlying transport error instead of spinning forever.
    let t = std::time::Instant::now();
    let err = Client::submit_resilient(
        "127.0.0.1:9",
        "nobody",
        0,
        GRID_A,
        2,
        Duration::from_millis(5),
        |_| {},
    )
    .expect_err("no server must mean an error");
    assert!(
        matches!(err, serve::protocol::WireError::Io(_)),
        "transport failure surfaces as Io, got {err:?}"
    );
    assert!(
        t.elapsed() < Duration::from_secs(30),
        "bounded backoff must not spin for long"
    );
}

#[test]
fn corrupt_cache_entry_is_evicted_and_recomputed_identically() {
    let dir = scratch("corrupt");
    let server = TestServer::start(&ServerConfig {
        service: ServiceConfig::default(),
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });

    let cold = server.client().submit("alice", 0, GRID_A).expect("cold");
    assert_eq!(cold.jobs_run, 4);

    // Corrupt one byte of one entry on disk.
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("cache dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "dqrc"))
        .collect();
    entries.sort();
    assert_eq!(entries.len(), 2, "one entry per point");
    let victim = &entries[0];
    let mut bytes = std::fs::read(victim).expect("read entry");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(victim, &bytes).expect("write corrupt entry");

    // The resubmission detects the corruption, recomputes that point, and
    // serves the other from cache — same bytes as the cold run.
    let jobs_before = server.handle.jobs_submitted();
    let again = server.client().submit("alice", 0, GRID_A).expect("again");
    assert_eq!(again.cached_points, 1);
    assert_eq!(again.computed_points, 1);
    assert_eq!(again.jobs_run, 2, "one point x 2 chains recomputed");
    assert!(server.handle.jobs_submitted() > jobs_before);
    assert_eq!(server.handle.cache_corrupt(), 1);
    assert_eq!(again.observables, cold.observables);

    // The recompute rewrote the entry: third time is a full warm hit.
    let warm = server.client().submit("alice", 0, GRID_A).expect("warm");
    assert_eq!(warm.jobs_run, 0);
    assert_eq!(warm.cached_points, 2);
    assert_eq!(warm.observables, cold.observables);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rejects_are_clean_and_the_connection_survives() {
    let server = TestServer::start(&ServerConfig::default());
    let mut client = server.client();
    // A malformed grid is refused with a reason, not a dropped socket.
    let err = client
        .submit("alice", 0, "lx = nope")
        .expect_err("must reject");
    assert!(matches!(err, serve::WireError::Rejected(_)));
    // Slot-fault grids are pool configuration, not tenant physics.
    let err = client
        .submit("alice", 0, &format!("{GRID_A}\nslot_faults = wedge@0:1!"))
        .expect_err("must reject slot faults");
    assert!(matches!(err, serve::WireError::Rejected(_)));
    // The same connection still serves a valid submission afterwards.
    let ok = client.submit("alice", 0, GRID_A).expect("valid submission");
    assert_eq!(ok.observables, baseline(GRID_A));
}

#[test]
fn future_protocol_version_gets_a_clean_error_frame_not_a_hang() {
    use std::io::Write;

    let server = TestServer::start(&ServerConfig::default());
    // Speak DQSF version+1 by hand: a well-formed frame whose version
    // field is one past what this build understands.
    let mut bytes = serve::encode_frame(&Frame::StatsRequest);
    let next = serve::protocol::VERSION + 1;
    bytes[4..8].copy_from_slice(&next.to_le_bytes());

    let mut stream = TcpStream::connect(&server.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set timeout");
    stream.write_all(&bytes).expect("send tampered frame");

    // The server must answer with a Rejected frame naming the version
    // problem — not stall, not slam the socket shut unannounced.
    match read_frame(&mut stream).expect("an error frame, not a hang") {
        Frame::Rejected { reason } => {
            assert!(
                reason.contains("version"),
                "reason should name the version mismatch: {reason}"
            );
            assert!(
                reason.contains(&next.to_string()),
                "reason should cite the offending version: {reason}"
            );
        }
        other => panic!("expected Rejected, got frame kind {}", other.kind()),
    }
    // After the error frame the connection is closed cleanly.
    assert!(
        matches!(read_frame(&mut stream), Err(serve::WireError::Io(_))),
        "connection should be closed after the version error"
    );

    // The server itself is unharmed: a fresh, correct-version client is
    // served as usual.
    let ok = server
        .client()
        .submit("alice", 0, GRID_A)
        .expect("submission");
    assert_eq!(ok.observables, baseline(GRID_A));
}

#[test]
fn queue_full_and_queue_closed_rejections_are_machine_distinguishable() {
    // GRID_A is 2 points x 2 chains = 4 jobs; admission is atomic, so a
    // bound of 3 can never fit it no matter how fast workers drain.
    let server = TestServer::start(&ServerConfig {
        service: ServiceConfig {
            queue_bound: 3,
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    });
    let err = server
        .client()
        .submit("alice", 0, GRID_A)
        .expect_err("4 jobs cannot fit a bound of 3");
    let serve::WireError::Rejected(reason) = err else {
        panic!("expected Rejected, got {err}");
    };
    assert!(
        reason.starts_with(serve::REASON_QUEUE_FULL),
        "full-queue reason must carry the stable prefix: {reason}"
    );
    // The prefix is what `dqmc-run submit` maps to its exit codes.
    assert_eq!(
        dqmc_cli::submit_exit::for_rejection(&reason),
        dqmc_cli::submit_exit::QUEUE_FULL
    );
    assert_ne!(
        dqmc_cli::submit_exit::QUEUE_FULL,
        dqmc_cli::submit_exit::QUEUE_CLOSED
    );
}
