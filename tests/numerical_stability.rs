//! Cross-crate numerical-stability studies: the claims of §III–IV of the
//! paper, exercised end-to-end.

use dqmc::{greens_from_udt, stratify, BMatrixFactory, HsField, ModelParams, Spin, StratAlgo};
use lattice::Lattice;
use linalg::Matrix;

fn setup(lside: usize, u: f64, slices: usize, seed: u64) -> (ModelParams, BMatrixFactory, HsField) {
    let model = ModelParams::new(Lattice::square(lside, lside, 1.0), u, 0.0, 0.125, slices);
    let fac = BMatrixFactory::new(&model);
    let mut rng = util::Rng::new(seed);
    let h = HsField::random(model.nsites(), slices, &mut rng);
    (model, fac, h)
}

fn clusters(fac: &BMatrixFactory, h: &HsField, k: usize, spin: Spin) -> Vec<Matrix> {
    (0..h.slices())
        .step_by(k)
        .map(|lo| fac.cluster(h, lo, (lo + k).min(h.slices()), spin))
        .collect()
}

#[test]
fn naive_inversion_fails_where_stratification_succeeds() {
    // The reason stratification exists: at β = 8, U = 6 the condition number
    // of I + B(β,0) wildly exceeds 1/ε, so naive inversion produces a G that
    // fails the defining identity, while the stratified G satisfies it.
    let (_, fac, h) = setup(3, 6.0, 64, 1);
    // Defining identity checked in wrapped form to avoid forming the full
    // product: G must satisfy B₀ G(0) = (I − G(slice-0 wrapped)) B₀ …
    // simpler: compare against a *double-precision-exhausting* reference:
    // both spins' stratified Gs satisfy G + B̂G′ relations; here we use the
    // anti-periodicity identity via the stable TDGF ladder.
    let cl = clusters(&fac, &h, 8, Spin::Up);
    let g_strat = greens_from_udt(&stratify(&cl, StratAlgo::PrePivot)).g;
    let gt = dqmc::unequal_time_greens_stable(&fac, &h, 8, Spin::Up);
    // The block method's G(0) is an independent stable evaluation.
    let rel = dqmc::greens::relative_difference(&g_strat, &gt[0]);
    assert!(rel < 1e-8, "stratified vs block-method G(0): {rel}");

    // The naive path visibly violates agreement at this β.
    let g_naive = dqmc::greens::greens_naive(&fac, &h, Spin::Up).g;
    let rel_naive = dqmc::greens::relative_difference(&g_naive, &gt[0]);
    assert!(
        rel_naive > 1e-6,
        "expected the naive inversion to have degraded: {rel_naive}"
    );
}

#[test]
fn algorithms_agree_across_beta() {
    // The Figure 2 claim must hold as the chain (and its condition number)
    // grows: the two stratification variants stay within ~1e-9 relative.
    for &slices in &[16usize, 32, 64] {
        let (_, fac, h) = setup(3, 4.0, slices, 2);
        let cl = clusters(&fac, &h, 8, Spin::Up);
        let g1 = greens_from_udt(&stratify(&cl, StratAlgo::Qrp)).g;
        let g2 = greens_from_udt(&stratify(&cl, StratAlgo::PrePivot)).g;
        let rel = dqmc::greens::relative_difference(&g2, &g1);
        assert!(rel < 1e-8, "L={slices}: {rel}");
    }
}

#[test]
fn cluster_size_tradeoff_preserves_accuracy() {
    // k = 1 (stratify every slice) through k = 16: all must agree.
    let (_, fac, h) = setup(3, 5.0, 32, 3);
    let reference = {
        let cl = clusters(&fac, &h, 1, Spin::Up);
        greens_from_udt(&stratify(&cl, StratAlgo::Qrp)).g
    };
    for &k in &[2usize, 4, 8, 16] {
        let cl = clusters(&fac, &h, k, Spin::Up);
        let g = greens_from_udt(&stratify(&cl, StratAlgo::PrePivot)).g;
        let rel = dqmc::greens::relative_difference(&g, &reference);
        // Larger clusters lose a little grading resolution; the paper finds
        // k ≈ 10 acceptable. Everything should stay far below any physics
        // scale (the Metropolis ratios tolerate ~1e-6 comfortably).
        assert!(rel < 1e-7, "k={k}: {rel}");
    }
}

#[test]
fn wrap_error_grows_with_depth_but_stays_controlled() {
    // Repeated wrapping accumulates error; ℓ = k = 10 keeps it tiny — the
    // rationale for the paper's wrapping depth.
    // (Note: clusters of k = 8 here — building g0 from one k = 40 cluster
    // would itself destroy accuracy, the very reason the paper caps k ≈ 10.)
    let (_, fac, h) = setup(3, 4.0, 40, 4);
    let cl = clusters(&fac, &h, 8, Spin::Up);
    let g0 = greens_from_udt(&stratify(&cl, StratAlgo::PrePivot)).g;

    let mut g = g0.clone();
    let mut errs = Vec::new();
    for l in 0..20 {
        g = dqmc::greens::wrap(&fac, &h, l, Spin::Up, &g);
        // Reference: recompute from scratch at the wrapped position.
        let order: Vec<Matrix> = ((l + 1)..40)
            .chain(0..=l)
            .map(|s| fac.b_matrix(&h, s, Spin::Up))
            .collect();
        let gr = greens_from_udt(&stratify(&order, StratAlgo::PrePivot)).g;
        errs.push(dqmc::greens::relative_difference(&g, &gr));
    }
    // After 10 wraps (the paper's ℓ): still excellent.
    assert!(errs[9] < 1e-9, "wrap error at depth 10: {}", errs[9]);
    // Error does not shrink as depth grows (sanity on the monitor).
    assert!(errs[19] >= errs[0] * 0.01);
}

#[test]
fn over_clustering_degrades_accuracy() {
    // The flip side of §III-A2: clustering trades stability for speed, so
    // pushing k far beyond ~10 must visibly hurt — quantifying why the
    // paper stops at k = 10.
    let (_, fac, h) = setup(3, 4.0, 40, 4);
    let reference = {
        let cl = clusters(&fac, &h, 4, Spin::Up);
        greens_from_udt(&stratify(&cl, StratAlgo::Qrp)).g
    };
    let err_at = |k: usize| {
        let cl = clusters(&fac, &h, k, Spin::Up);
        let g = greens_from_udt(&stratify(&cl, StratAlgo::PrePivot)).g;
        dqmc::greens::relative_difference(&g, &reference)
    };
    let err_small = err_at(8);
    let err_huge = err_at(40); // the entire chain as one naive product
    assert!(err_small < 1e-8, "k=8 should be accurate: {err_small}");
    assert!(
        err_huge > 100.0 * err_small,
        "k=L should be much worse: {err_huge} vs {err_small}"
    );
}

#[test]
fn multilayer_free_fermions_exact() {
    // U = 0 on a 3-layer stack: the full DQMC pipeline must reproduce the
    // analytic G = (I + e^{−βK})⁻¹ to near machine precision, interface
    // geometry included.
    let lat = Lattice::multilayer(3, 3, 3, 1.0, 0.4);
    let model = ModelParams::new(lat.clone(), 0.0, 0.0, 0.125, 24);
    let fac = BMatrixFactory::new(&model);
    let mut rng = util::Rng::new(5);
    let h = HsField::random(model.nsites(), 24, &mut rng);
    let cl = clusters(&fac, &h, 8, Spin::Up);
    let g = greens_from_udt(&stratify(&cl, StratAlgo::PrePivot)).g;

    let k = lat.kinetic_matrix(0.0);
    let e = linalg::sym_expm(&k, -3.0).unwrap();
    let mut m = Matrix::identity(27);
    m.axpy(1.0, &e);
    let exact = linalg::lu::inverse(&m).unwrap();
    let rel = dqmc::greens::relative_difference(&g, &exact);
    assert!(rel < 1e-10, "{rel}");
}

#[test]
fn prepivot_interchange_count_shrinks_after_first_step() {
    // §IV-A: the iterates become progressively graded, so the pre-pivot
    // permutations quickly approach identity. Compare the displacement of
    // the *last* step's permutation against the first.
    let (_, fac, h) = setup(4, 6.0, 48, 6);
    let n = 16usize;
    let cl = clusters(&fac, &h, 8, Spin::Up);
    // Track interchanges step by step using the incremental API.
    let mut state = dqmc::StratifyState::new(&cl[0], StratAlgo::PrePivot);
    let mut per_step = vec![state.udt().interchanges];
    for b in &cl[1..] {
        let before = state.udt().interchanges;
        state.push(b);
        per_step.push(state.udt().interchanges - before);
    }
    // Later steps need clearly fewer interchanges than the worst case n.
    let tail_avg: f64 =
        per_step[2..].iter().map(|&x| x as f64).sum::<f64>() / (per_step.len() - 2) as f64;
    assert!(
        tail_avg < 0.9 * n as f64,
        "graded structure should limit reordering: avg {tail_avg} of {n}"
    );
}
