//! Scripted fault drills: every injected failure class must complete the
//! simulation through the recovery ladder (retry → cluster shrink → host
//! fallback) instead of panicking, and one-shot faults must heal with
//! **bit-identical** observables — retries consume no Metropolis RNG.
//!
//! Device and host clustering differ in op order (≈1e-12 relative), so
//! bit-identity is only asserted between runs on the *same* backend.

use dqmc::{ModelParams, RecoveryAction, SimParams, Simulation, Spin};
use gpusim::{Device, DeviceBackend, DeviceSpec, FaultPlan};
use lattice::Lattice;

fn params(seed: u64) -> SimParams {
    let model = ModelParams::new(Lattice::square(4, 4, 1.0), 4.0, 0.0, 0.125, 16);
    SimParams::new(model)
        .with_sweeps(10, 30)
        .with_seed(seed)
        .with_cluster_size(4)
        .with_bin_size(5)
}

fn device_sim(seed: u64, plan: FaultPlan) -> Simulation {
    let mut dev = Device::new(DeviceSpec::tesla_c2050());
    dev.arm_faults(plan);
    Simulation::new(params(seed)).with_backend(Box::new(DeviceBackend::new(dev)))
}

fn assert_observables_bit_identical(a: &Simulation, b: &Simulation) {
    assert_eq!(a.greens(Spin::Up), b.greens(Spin::Up), "G_up bits");
    assert_eq!(a.greens(Spin::Down), b.greens(Spin::Down), "G_dn bits");
    let (oa, ob) = (a.observables(), b.observables());
    assert_eq!(oa.density(), ob.density());
    assert_eq!(oa.double_occupancy(), ob.double_occupancy());
    assert_eq!(oa.avg_sign(), ob.avg_sign());
    assert_eq!(a.acceptance_rate().to_bits(), b.acceptance_rate().to_bits());
}

#[test]
fn transfer_corruption_heals_bit_identically() {
    // Scattered one-shot D2H corruptions: some land on cluster products
    // (caught by the cache's taint scan), some on wrapped Green's functions
    // (caught by the wrap path's scan). Each heals with a clean retry.
    let mut clean = device_sim(7, FaultPlan::new());
    clean.run();
    let mut faulted = device_sim(
        7,
        FaultPlan::new()
            .with_seed(1)
            .corrupt_transfer(3)
            .corrupt_transfer(40)
            .corrupt_transfer(90)
            .corrupt_transfer(200),
    );
    faulted.run();
    let log = faulted.recovery_log();
    assert!(
        log.total() >= 4,
        "all four corruptions seen: {}",
        log.summary()
    );
    assert_observables_bit_identical(&clean, &faulted);
}

#[test]
fn arena_oom_during_clustering_retries_bit_identically() {
    // The very first device allocations happen while clustering for the
    // initial Green's function; one-shot exhaustion there must retry clean.
    let mut clean = device_sim(8, FaultPlan::new());
    clean.run();
    let mut faulted = device_sim(8, FaultPlan::new().oom_at_alloc(1).oom_at_alloc(5));
    faulted.run();
    let log = faulted.recovery_log();
    assert!(
        log.events()
            .iter()
            .any(|e| matches!(e.action, RecoveryAction::Retry { .. })),
        "OOM must surface as retries: {}",
        log.summary()
    );
    assert_observables_bit_identical(&clean, &faulted);
}

#[test]
fn persistent_launch_failure_falls_back_to_host() {
    // Every launch fails forever: retries are futile, so the ladder must
    // abandon the device. The whole run then computes on the host path,
    // bit-identical to a plain host-backend run (failed attempts consume
    // no sweep RNG).
    let mut host = Simulation::new(params(9));
    host.run();

    let mut plan = FaultPlan::new();
    for n in 1..=100_000 {
        plan = plan.fail_launch(n);
    }
    let mut faulted = device_sim(9, plan);
    faulted.run();
    let log = faulted.recovery_log();
    assert!(
        log.events()
            .iter()
            .any(|e| matches!(e.action, RecoveryAction::HostFallback)),
        "expected host fallback: {}",
        log.summary()
    );
    assert_observables_bit_identical(&host, &faulted);
}

#[test]
fn nan_poisoned_greens_repairs_at_simulation_level() {
    // Poison G between sweeps (the model of an undetected upstream
    // corruption): the sweep-start taint scan must repair before any
    // Metropolis decision reads the NaN, leaving the run bit-identical.
    let mut clean = Simulation::new(params(10));
    clean.run();

    let mut poisoned = Simulation::new(params(10));
    poisoned.step(12);
    poisoned.core_mut().poison_greens(Spin::Up, 2, 3, f64::NAN);
    while !poisoned.is_complete() {
        poisoned.step(7);
    }
    let log = poisoned.recovery_log();
    assert!(
        log.events()
            .iter()
            .any(|e| matches!(e.action, RecoveryAction::TaintRepair)),
        "expected a taint repair: {}",
        log.summary()
    );
    assert_observables_bit_identical(&clean, &poisoned);
}

#[test]
fn random_fault_storm_completes_within_tolerance() {
    // A randomized storm across all categories, including finite bit flips
    // (which are *not* bit-identity-preserving: a flipped value can steer
    // Metropolis until the wrap-divergence monitor heals it). The run must
    // complete without panicking and stay physical.
    let mut clean = device_sim(11, FaultPlan::new());
    clean.run();
    let mut faulted = device_sim(11, FaultPlan::random(33, 400, 0.02));
    faulted.run();
    assert!(faulted.is_complete());

    let (rho, rho_err) = faulted.observables().density();
    let (rho0, rho0_err) = clean.observables().density();
    let tol = 0.05 + 4.0 * (rho_err + rho0_err);
    assert!(
        (rho - rho0).abs() < tol,
        "density drifted: {rho}±{rho_err} vs {rho0}±{rho0_err}"
    );
    let (sign, _) = faulted.observables().avg_sign();
    assert!(sign.abs() <= 1.0 && sign.is_finite());
}
