//! Cross-crate integration of the simulated accelerator: the device path
//! must be numerically interchangeable with the host path inside a running
//! DQMC simulation, and its cost model must reproduce the §VI orderings.

use dqmc::{greens_from_udt, stratify, SimParams, Spin, StratAlgo};
use gpusim::{cluster_custom_kernel, hybrid_greens, wrap_on_device, Device, DeviceSpec, HostSpec};
use lattice::Lattice;

fn thermalised_core(lside: usize, slices: usize) -> dqmc::sweep::DqmcCore {
    let model = dqmc::ModelParams::new(Lattice::square(lside, lside, 1.0), 4.0, 0.0, 0.125, slices);
    let mut core =
        dqmc::sweep::DqmcCore::new(SimParams::new(model).with_seed(17).with_cluster_size(5));
    for _ in 0..3 {
        core.sweep(None);
    }
    core
}

#[test]
fn device_clusters_reproduce_simulation_greens() {
    // Build the Green's function of a thermalised configuration entirely
    // from device-produced cluster matrices; must match the engine's own.
    let core = thermalised_core(3, 20);
    let mut dev = Device::new(DeviceSpec::tesla_c2050());
    let expk = dev.set_matrix(core.fac.expk());

    for spin in [Spin::Up, Spin::Down] {
        let mut clusters = Vec::new();
        let mut lo = 0;
        while lo < 20 {
            clusters.push(cluster_custom_kernel(
                &mut dev,
                &expk,
                &core.fac,
                &core.h,
                lo,
                lo + 5,
                spin,
            ));
            lo += 5;
        }
        let g = greens_from_udt(&stratify(&clusters, StratAlgo::PrePivot));
        let rel = dqmc::greens::relative_difference(&g.g, core.greens(spin));
        assert!(rel < 1e-9, "{spin:?}: {rel}");
    }
}

#[test]
fn device_wrap_chain_matches_host_chain() {
    // Wrap through four slices alternating host/device: paths interleave
    // bit-compatibly (same GEMM kernel underneath).
    let core = thermalised_core(3, 20);
    let mut dev = Device::new(DeviceSpec::tesla_c2050());
    let ek = dev.set_matrix(core.fac.expk());
    let eki = dev.set_matrix(core.fac.expk_inv());

    let mut g_host = core.greens(Spin::Up).clone();
    let mut g_dev = g_host.clone();
    for l in 0..4 {
        g_host = dqmc::greens::wrap(&core.fac, &core.h, l, Spin::Up, &g_host);
        g_dev = wrap_on_device(&mut dev, &ek, &eki, &core.fac, &core.h, l, Spin::Up, &g_dev);
    }
    assert!(
        g_host.max_abs_diff(&g_dev) < 1e-12,
        "{}",
        g_host.max_abs_diff(&g_dev)
    );
}

#[test]
fn hybrid_speedup_grows_with_system_size() {
    // Figure 10's qualitative content: the hybrid advantage grows with N.
    let host = HostSpec::nehalem_2s4c();
    let speedup = |lside: usize| {
        let model = dqmc::ModelParams::new(Lattice::square(lside, lside, 1.0), 4.0, 0.0, 0.125, 20);
        let fac = dqmc::BMatrixFactory::new(&model);
        let mut rng = util::Rng::new(23);
        let h = dqmc::HsField::random(model.nsites(), 20, &mut rng);
        let mut dev = Device::new(DeviceSpec::tesla_c2050());
        let rep = hybrid_greens(&mut dev, &host, &fac, &h, Spin::Up, 10, StratAlgo::PrePivot);
        rep.cpu_seconds / rep.hybrid_seconds
    };
    let s_small = speedup(6); // N = 36
    let s_large = speedup(14); // N = 196
    assert!(
        s_large > s_small,
        "hybrid advantage should grow: {s_small} → {s_large}"
    );
    assert!(s_large > 1.0, "hybrid must win at N = 196: {s_large}");
}

#[test]
fn simulated_time_is_deterministic() {
    let run = || {
        let core = thermalised_core(3, 20);
        let mut dev = Device::new(DeviceSpec::tesla_c2050());
        let expk = dev.set_matrix(core.fac.expk());
        let _ = cluster_custom_kernel(&mut dev, &expk, &core.fac, &core.h, 0, 5, Spin::Up);
        dev.elapsed()
    };
    assert_eq!(run(), run(), "device model must be exactly reproducible");
}
