//! Offline stand-in for the `loom` model checker.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a drop-in subset of loom's API ([`model`], [`sync`], [`thread`])
//! that the `--cfg loom` models in `crates/sched/tests/loom_models.rs`
//! compile against. The real loom exhaustively enumerates thread
//! interleavings with DPOR; this shim approximates that exploration by
//! running each model body many times under a *seeded schedule
//! perturbator*: every synchronization operation (`Mutex::lock`,
//! `Condvar` waits/notifies, `thread::spawn`) draws from a deterministic
//! per-iteration RNG and may yield — or briefly sleep — to shove the OS
//! scheduler into a different interleaving. Assertions inside the model
//! therefore run under hundreds of distinct schedules per test instead of
//! one.
//!
//! Differences from real loom, by design:
//!
//! - exploration is randomized, not exhaustive: a passing run raises
//!   confidence, it is not a proof. When registry access returns, swapping
//!   this shim for the real crate is a one-line change in the workspace
//!   manifest — model code is written against loom's actual API.
//! - `sync` types are thin wrappers over `std::sync` (the guard and error
//!   types *are* the std ones), so poisoning semantics — which the
//!   workspace's `relock` recovery depends on — behave exactly as in
//!   production.
//! - iteration count comes from `LOOM_SHIM_ITERS` (default 128) rather
//!   than loom's preemption bounding.

use std::sync::atomic::{AtomicU64, Ordering};

/// Global schedule-perturbation state, reseeded per model iteration.
static SCHED_STATE: AtomicU64 = AtomicU64::new(0x9e37_79b9_7f4a_7c15);

/// Reseeds the perturbator (called once per model iteration).
fn reseed(seed: u64) {
    SCHED_STATE.store(seed | 1, Ordering::Relaxed);
}

/// One synchronization point: advances the shared xorshift stream and
/// perturbs the schedule on a seed-dependent subset of calls.
fn sync_point() {
    let r = SCHED_STATE
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |mut x| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            Some(x)
        })
        .unwrap_or(1);
    match r % 16 {
        0..=3 => std::thread::yield_now(),
        4 => std::thread::sleep(std::time::Duration::from_micros(r % 7)),
        _ => {}
    }
}

/// Runs `f` under many perturbed schedules (loom's `model` entry point).
///
/// Each iteration reseeds the global perturbator deterministically, so a
/// failure's iteration index identifies a reproducible seed family (modulo
/// residual OS-scheduler noise, which the yields only bias).
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iters: u64 = std::env::var("LOOM_SHIM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(128);
    for i in 0..iters {
        reseed(0xd1b5_4a32_d192_ed03_u64.wrapping_mul(i + 1));
        f();
    }
}

/// Schedule-perturbing wrappers over `std::sync`.
pub mod sync {
    pub use std::sync::{Arc, LockResult, MutexGuard, PoisonError, WaitTimeoutResult};

    /// Re-export of std atomics (real loom instruments these; the shim
    /// relies on the mutex/condvar perturbation for schedule diversity).
    pub mod atomic {
        pub use std::sync::atomic::*;
    }

    /// A `std::sync::Mutex` that perturbs the schedule on every `lock`.
    #[derive(Debug, Default)]
    pub struct Mutex<T> {
        inner: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// A new unlocked mutex.
        pub fn new(t: T) -> Self {
            Mutex {
                inner: std::sync::Mutex::new(t),
            }
        }

        /// Acquires the lock after a schedule perturbation point.
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            super::sync_point();
            self.inner.lock()
        }

        /// Attempts the lock without blocking.
        pub fn try_lock(&self) -> std::sync::TryLockResult<MutexGuard<'_, T>> {
            super::sync_point();
            self.inner.try_lock()
        }

        /// Consumes the mutex, returning the inner value.
        pub fn into_inner(self) -> LockResult<T> {
            self.inner.into_inner()
        }
    }

    /// A `std::sync::Condvar` that perturbs the schedule around waits and
    /// notifies.
    #[derive(Debug, Default)]
    pub struct Condvar {
        inner: std::sync::Condvar,
    }

    impl Condvar {
        /// A new condition variable.
        pub fn new() -> Self {
            Condvar::default()
        }

        /// Blocks on the condition after a perturbation point.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            super::sync_point();
            let out = self.inner.wait(guard);
            super::sync_point();
            out
        }

        /// Bounded wait; the timeout keeps models live when a notify is
        /// racing the wait.
        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: std::time::Duration,
        ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
            super::sync_point();
            self.inner.wait_timeout(guard, dur)
        }

        /// Wakes one waiter.
        pub fn notify_one(&self) {
            super::sync_point();
            self.inner.notify_one();
        }

        /// Wakes all waiters.
        pub fn notify_all(&self) {
            super::sync_point();
            self.inner.notify_all();
        }
    }
}

/// Thread spawning with a perturbation point at spawn and join.
pub mod thread {
    pub use std::thread::JoinHandle;

    /// Spawns a model thread (perturbing the schedule first, so spawn
    /// order vs. first-step order varies across iterations).
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        super::sync_point();
        std::thread::spawn(move || {
            super::sync_point();
            f()
        })
    }

    /// Cooperative yield (loom's explicit interleaving point).
    pub fn yield_now() {
        super::sync_point();
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::sync::{Arc, Condvar, Mutex};

    #[test]
    fn model_runs_body_under_many_seeds() {
        let count = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let c = Arc::clone(&count);
        super::model(move || {
            c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert!(count.load(std::sync::atomic::Ordering::Relaxed) >= 2);
    }

    #[test]
    fn mutex_and_condvar_round_trip() {
        let m = Arc::new(Mutex::new(0u32));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let t = super::thread::spawn(move || {
            let mut g = m2.lock().unwrap_or_else(|e| e.into_inner());
            *g = 7;
            drop(g);
            cv2.notify_all();
        });
        let mut g = m.lock().unwrap_or_else(|e| e.into_inner());
        while *g != 7 {
            let (guard, _) = cv
                .wait_timeout(g, std::time::Duration::from_millis(5))
                .unwrap_or_else(|e| e.into_inner());
            g = guard;
        }
        drop(g);
        t.join().expect("helper thread exits cleanly");
    }
}
