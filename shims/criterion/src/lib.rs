//! Offline stand-in for the `criterion` crate.
//!
//! Supports the benchmark-definition surface used by `crates/bench`
//! (`criterion_group!` / `criterion_main!`, `benchmark_group`,
//! `bench_with_input`, `Throughput`, `sample_size`) and reports median
//! wall-clock timings as plain text. No statistics engine, no plotting —
//! just enough to keep `cargo bench` runnable without network access.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (std's implementation).
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    /// Default number of timed samples per benchmark.
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&id.into(), None);
        self
    }
}

/// Identifier `function_name/parameter` for one benchmark in a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("kernel", n)` → `kernel/n`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Units-of-work declaration used to report a rate next to the timing.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (e.g. flops) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times `f` against `input` under the given id.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id), self.throughput);
        self
    }

    /// Times `f` under the given id (no input parameter).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.into()), self.throughput);
        self
    }

    /// Ends the group (prints a trailing newline for readability).
    pub fn finish(self) {
        println!();
    }
}

/// Passed to benchmark closures; times the routine under test.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording `sample_size` samples after one warmup.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine()); // warmup, untimed
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("  {id}: no samples");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let secs = median.as_secs_f64();
        let rate = match throughput {
            Some(Throughput::Elements(n)) if secs > 0.0 => {
                format!("  {:.3} Melem/s", n as f64 / secs / 1e6)
            }
            Some(Throughput::Bytes(n)) if secs > 0.0 => {
                format!("  {:.3} MiB/s", n as f64 / secs / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!(
            "  {id}: median {median:?} over {} samples{rate}",
            sorted.len()
        );
    }
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("f", 1), &1, |b, _| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert_eq!(runs, 4); // warmup + 3 samples
    }
}
