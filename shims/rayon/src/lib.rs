//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal drop-in replacement exposing the subset of rayon's API the
//! kernels use (`par_iter`, `par_iter_mut`, `par_chunks`, `par_chunks_mut`,
//! `into_par_iter`). Every "parallel" iterator is the corresponding standard
//! sequential iterator, so all adapters (`map`, `zip`, `enumerate`,
//! `for_each`, `collect`, …) come from [`std::iter::Iterator`] for free and
//! numerics are bit-identical to a single-threaded rayon run.
//!
//! When the real rayon is available again, deleting this shim and restoring
//! the registry dependency is a one-line change in the workspace manifest —
//! no call site changes.

/// The traits user code imports via `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// Sequential implementations of rayon's parallel-iterator entry points.
pub mod iter {
    /// `into_par_iter()` for owned collections and ranges.
    ///
    /// Blanket impl over [`IntoIterator`] so ranges, `Vec`s, and anything
    /// else iterable gains the method, exactly as with real rayon (minus the
    /// `Send`/`Sync` bounds, which sequential execution does not need).
    pub trait IntoParallelIterator {
        /// Element type yielded by the iterator.
        type Item;
        /// Concrete iterator type returned by [`Self::into_par_iter`].
        type Iter: Iterator<Item = Self::Item>;
        /// Converts `self` into a (sequential) "parallel" iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter` / `par_chunks` on shared slices.
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for `rayon`'s `par_iter`.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Sequential stand-in for `rayon`'s `par_chunks`.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// `par_iter_mut` / `par_chunks_mut` on mutable slices.
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for `rayon`'s `par_iter_mut`.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// Sequential stand-in for `rayon`'s `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

/// Sequential stand-in for `rayon::join`: runs both closures in order.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Always 1: the shim never spawns threads.
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn range_into_par_iter_collects() {
        let v: Vec<usize> = (0..5).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn slice_par_chunks_mut_zip() {
        let mut data = [1.0f64; 6];
        let d = [2.0f64, 3.0];
        data.par_chunks_mut(3)
            .zip(d.par_iter())
            .for_each(|(chunk, &s)| {
                for x in chunk.iter_mut() {
                    *x *= s;
                }
            });
        assert_eq!(data, [2.0, 2.0, 2.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }
}
