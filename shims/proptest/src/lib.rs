//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map`, numeric range strategies, tuple strategies,
//! [`collection::vec`], [`bool::ANY`], [`prop_assert!`] /
//! [`prop_assert_eq!`], and [`test_runner::Config`] (`ProptestConfig`).
//!
//! Differences from real proptest, by design:
//! - cases are generated from a deterministic per-test RNG (seeded from the
//!   test name), so runs are reproducible without a persistence file;
//! - there is no shrinking: a failing case panics with the case index, and
//!   re-running deterministically reproduces it.

/// Everything a test pulls in with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Test-runner configuration and the deterministic RNG.
pub mod test_runner {
    /// Run configuration; `ProptestConfig` in the prelude.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic xorshift64* generator used to drive strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the RNG from an arbitrary label (e.g. the test name).
        pub fn deterministic(label: &str) -> Self {
            // FNV-1a over the label; never zero.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform in `[0, 1)` with 53-bit resolution.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into a strategy-producing `f`.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Keeps only values satisfying `pred` (bounded retries).
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }
    }

    /// Strategy yielding a fixed value (cloned per case).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter {:?}: rejected 1000 consecutive cases",
                self.whence
            )
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }
    int_range_strategies!(usize, u64, u32, u16, u8);

    macro_rules! signed_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + rng.below(span) as i64) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i64 - lo as i64) as u64 + 1;
                    (lo as i64 + rng.below(span) as i64) as $t
                }
            }
        )*};
    }
    signed_range_strategies!(i64, i32, i16, i8);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() as f32 * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating `true` / `false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub static ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification: an exact length or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: each element drawn from `element`, length from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Defines property tests. See the crate docs for supported forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])+
        fn $name:ident( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..config.cases {
                let __run = |rng: &mut $crate::test_runner::TestRng| {
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), rng); )+
                    $body
                };
                __run(&mut rng);
            }
        }
    )*};
}

/// Skips the current case when the assumption does not hold.
///
/// Inside [`proptest!`] each case body runs in its own closure, so an early
/// `return` abandons just that case (no shrinking bookkeeping needed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// `assert!` that names the property-test context on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// `assert_eq!` for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// `assert_ne!` for property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("bounds");
        for _ in 0..500 {
            let u = Strategy::generate(&(3usize..10), &mut rng);
            assert!((3..10).contains(&u));
            let v = Strategy::generate(&(2usize..=3), &mut rng);
            assert!((2..=3).contains(&v));
            let f = Strategy::generate(&(-1.0f64..1.0), &mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = crate::test_runner::TestRng::deterministic("lens");
        for _ in 0..200 {
            let v = Strategy::generate(&crate::collection::vec(0.0f64..1.0, 1..20), &mut rng);
            assert!(!v.is_empty() && v.len() < 20);
            let w = Strategy::generate(&crate::collection::vec(0.0f64..1.0, 6usize), &mut rng);
            assert_eq!(w.len(), 6);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("same");
        let mut b = crate::test_runner::TestRng::deterministic("same");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_round_trip(
            n in 1usize..8,
            x in -2.0f64..2.0,
            flag in crate::bool::ANY,
        ) {
            prop_assert!((1..8).contains(&n));
            prop_assert!(x.abs() <= 2.0);
            let _ = flag;
        }

        #[test]
        fn flat_map_composes(v in (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(0.0f64..1.0, n * 2).prop_map(move |v| (n, v))
        })) {
            prop_assert_eq!(v.1.len(), v.0 * 2);
        }
    }
}
