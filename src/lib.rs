//! Umbrella crate for the DQMC workspace.
//!
//! Re-exports the public crates so the `examples/` and `tests/` directories
//! at the repository root can exercise the whole system through one
//! dependency. See the individual crates for the real APIs:
//!
//! - [`dqmc`] — the determinant quantum Monte Carlo engine (the paper's
//!   contribution, including stratification with pre-pivoting),
//! - [`linalg`] — the dense linear-algebra substrate (GEMM/QR/QRP/LU/…),
//! - [`lattice`] — Hubbard lattice geometry and Fourier analysis,
//! - [`gpusim`] — the simulated GPU accelerator and hybrid driver,
//! - [`ed`] — exact diagonalisation of small clusters (validation),
//! - [`util`] — RNG, statistics, timers.

pub use dqmc;
pub use ed;
pub use gpusim;
pub use lattice;
pub use linalg;
pub use util;
