//! Standalone fleet shard worker.
//!
//! The production binaries (`dqmc-run`, `dqmc-serve`) re-enter themselves
//! in `shard-child` mode; this thin wrapper exists so the workspace-root
//! integration tests (`tests/fleet.rs`) get a child executable through
//! `CARGO_BIN_EXE_fleet-child` — Cargo only builds *this* package's bins
//! for its tests.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(fleet::child_main(&args));
}
