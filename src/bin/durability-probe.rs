//! Crash-point probe for the durability test tier.
//!
//! Performs exactly one real on-disk publication of one of the
//! workspace's durable formats, through the production code path for
//! that format, then exits. The harness (`tests/durability.rs`) arms
//! I/O faults through the `DQMC_VFS_FAULTS` environment DSL, so a
//! scripted `crash@N` kills this process mid-write exactly as a power
//! failure would — and the test then inspects the residue the real
//! writer left behind.
//!
//! Usage: `durability-probe write <dqcp|dqrc|dqsm|dqsr> <old|new> <path>`
//!
//! `old` and `new` are two distinct, deterministic payloads per format;
//! crash-point tests seed `old`, crash while publishing `new`, and
//! assert the destination still holds `old` byte-for-byte. For `dqrc`
//! the path is the cache *directory* (the entry lands at
//! `<path>/<DQRC_KEY as 016x>.dqrc`); for the other formats it is the
//! destination file itself.

use fleet::{ShardManifest, ShardReport};
use sched::PointSummary;
use std::path::Path;

/// Fixed cache key the `dqrc` probe stores under.
pub const DQRC_KEY: u64 = 0xD0_0DF00D_u64;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (format, variant, path) = match args.as_slice() {
        [cmd, format, variant, path] if cmd == "write" => (format.as_str(), variant.as_str(), path),
        _ => {
            eprintln!("usage: durability-probe write <dqcp|dqrc|dqsm|dqsr> <old|new> <path>");
            std::process::exit(2);
        }
    };
    let new = match variant {
        "old" => false,
        "new" => true,
        other => {
            eprintln!("unknown variant {other:?} (want old|new)");
            std::process::exit(2);
        }
    };
    let path = Path::new(path);
    let result = match format {
        "dqcp" => write_dqcp(new, path),
        "dqrc" => write_dqrc(new, path),
        "dqsm" => write_dqsm(new, path),
        "dqsr" => write_dqsr(new, path),
        other => {
            eprintln!("unknown format {other:?} (want dqcp|dqrc|dqsm|dqsr)");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("durability-probe: {format}/{variant} write failed: {e}");
        std::process::exit(1);
    }
}

/// The fixed simulation parameters both checkpoint variants share; the
/// variants differ only in progress, mirroring a checkpoint being
/// replaced by a later one of the same run.
fn probe_params() -> dqmc::SimParams {
    let model = dqmc::ModelParams::new(lattice::Lattice::square(2, 2, 1.0), 4.0, 0.1, 0.125, 6);
    dqmc::SimParams::new(model)
        .with_sweeps(2, 4)
        .with_seed(7)
        .with_cluster_size(3)
        .with_bin_size(2)
}

fn write_dqcp(new: bool, path: &Path) -> Result<(), String> {
    let mut sim = dqmc::Simulation::new(probe_params());
    sim.step(if new { 5 } else { 2 });
    dqmc::checkpoint::save(&sim, path).map_err(|e| e.to_string())
}

fn probe_summary(new: bool) -> PointSummary {
    PointSummary {
        point: 3,
        u: if new { 6.0 } else { 2.0 },
        beta: 1.5,
        slices: 12,
        chains_ok: 2,
        chains_failed: 0,
        bin_count: if new { 8 } else { 4 },
        scalars: None,
        mean_acceptance: 0.5,
        max_wrap_error: 1e-9,
        recovery_events: 0,
        preemptions: 0,
        device_quanta: 0,
        host_quanta: 0,
        device_seconds: 0.0,
    }
}

fn write_dqrc(new: bool, dir: &Path) -> Result<(), String> {
    // The production open path scrubs first — a rerun after a crash
    // exercises exactly the recovery the tier is proving.
    let cache = serve::ResultCache::open(dir).map_err(|e| e.to_string())?;
    cache
        .store(DQRC_KEY, &probe_summary(new))
        .map_err(|e| e.to_string())
}

fn write_dqsm(new: bool, path: &Path) -> Result<(), String> {
    let m = ShardManifest {
        shard: 0,
        nshards: 2,
        fingerprint: 0xFEED_0000_0000_0001,
        grid_text: "lx = 2\nly = 2\nu = 2.0\nbeta = 1.0\n".into(),
        points: if new { vec![0, 1, 2] } else { vec![0, 1] },
    };
    m.write(path).map_err(|e| e.to_string())
}

fn write_dqsr(new: bool, path: &Path) -> Result<(), String> {
    let r = ShardReport {
        shard: 0,
        nshards: 1,
        fingerprint: 0xFEED_0000_0000_0002,
        seed: 42,
        chains: 2,
        warmup: 2,
        sweeps: 4,
        assigned: vec![3, 4],
        fragments: if new {
            vec![probe_summary(false), probe_summary(true)]
        } else {
            vec![probe_summary(false)]
        },
        failed_chains: 0,
    };
    r.write(path).map_err(|e| e.to_string())
}
